"""The MPC simulator: distributed tables, memory enforcement, accounting.

The simulator executes *logically global* numpy operations while tracking,
per machine, how many words it stores and how many it sends/receives each
round.  It raises :class:`MPCViolation` the moment any machine would exceed
its local memory — so an algorithm that completes under the simulator is a
certificate that the claimed memory regime suffices (up to the configured
constants), which is precisely the content of the paper's Section 6.

A :class:`DistributedTable` is a set of fixed-width records (named int/float
columns) plus an assignment of records to machines.  All primitives in
:mod:`repro.mpc.primitives` operate on these tables and charge rounds
through :class:`MPCSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import MPCConfig

__all__ = ["MPCViolation", "RoundLog", "MPCSimulator", "DistributedTable"]


class MPCViolation(RuntimeError):
    """A machine exceeded its local memory or per-round communication."""


@dataclass
class RoundLog:
    """One accounting entry per charged primitive invocation."""

    name: str
    rounds: int
    records_moved: int
    max_machine_load: int


class MPCSimulator:
    """Round and memory accountant for one MPC execution.

    Parameters
    ----------
    config:
        The machine model (memory per machine, machine count, cost model).

    Notes
    -----
    The simulator is deliberately strict: *every* repartition checks the
    post-state of each machine against ``config.machine_memory`` and the
    volume each machine receives in the round against the same cap (the MPC
    model bounds per-round communication by local memory).
    """

    def __init__(self, config: MPCConfig) -> None:
        self.config = config
        self.rounds = 0
        self.total_messages = 0
        self.log: list[RoundLog] = []
        self.peak_machine_load = 0

    # -- accounting ---------------------------------------------------------
    def charge(self, primitive: str, *, records_moved: int = 0, max_machine_load: int = 0) -> None:
        """Charge the round cost of ``primitive`` and record statistics."""
        r = self.config.rounds_for(primitive)
        self.rounds += r
        self.total_messages += records_moved
        self.peak_machine_load = max(self.peak_machine_load, max_machine_load)
        self.log.append(RoundLog(primitive, r, records_moved, max_machine_load))

    def check_load(self, counts: np.ndarray, *, context: str) -> None:
        """Verify no machine holds more than its local memory."""
        if counts.size and counts.max() > self.config.machine_memory:
            raise MPCViolation(
                f"{context}: machine load {int(counts.max())} exceeds local "
                f"memory {self.config.machine_memory} "
                f"(gamma={self.config.gamma}, n={self.config.n})"
            )

    def summary(self) -> dict:
        """Aggregate statistics for reports and benches."""
        return {
            "rounds": self.rounds,
            "primitive_calls": len(self.log),
            "total_messages": self.total_messages,
            "peak_machine_load": self.peak_machine_load,
            "num_machines": self.config.num_machines,
            "machine_memory": self.config.machine_memory,
            "gamma": self.config.gamma,
        }


class DistributedTable:
    """Fixed-schema records partitioned over machines.

    Columns are parallel numpy arrays; ``machine_of`` maps each record to
    its current machine.  Construction and every repartition validate the
    per-machine load against the simulator's config.
    """

    def __init__(
        self,
        sim: MPCSimulator,
        columns: dict[str, np.ndarray],
        machine_of: np.ndarray | None = None,
        *,
        words_per_record: int | None = None,
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        sizes = {c: np.asarray(a).size for c, a in columns.items()}
        if len(set(sizes.values())) != 1:
            raise ValueError(f"column length mismatch: {sizes}")
        self.sim = sim
        self.columns = {c: np.asarray(a) for c, a in columns.items()}
        self.num_records = next(iter(sizes.values()))
        self.words_per_record = words_per_record or len(columns)
        if machine_of is None:
            machine_of = self._even_assignment(self.num_records)
        self.machine_of = np.asarray(machine_of, dtype=np.int64)
        self._validate_load("table construction")

    # -- helpers -------------------------------------------------------------
    def _even_assignment(self, count: int) -> np.ndarray:
        cap = self.capacity_records
        return (np.arange(count, dtype=np.int64) // max(cap, 1)) % max(
            self.sim.config.num_machines, 1
        )

    @property
    def capacity_records(self) -> int:
        """Records one machine can hold given the record width."""
        return max(1, self.sim.config.machine_memory // self.words_per_record)

    def machine_loads(self) -> np.ndarray:
        loads = np.zeros(self.sim.config.num_machines, dtype=np.int64)
        if self.num_records:
            np.add.at(loads, self.machine_of, self.words_per_record)
        return loads

    def _validate_load(self, context: str) -> None:
        self.sim.check_load(self.machine_loads(), context=context)

    def __len__(self) -> int:
        return self.num_records

    def __getitem__(self, col: str) -> np.ndarray:
        return self.columns[col]

    # -- structural operations ------------------------------------------------
    def select(self, mask: np.ndarray, *, context: str = "select") -> "DistributedTable":
        """Local filtering (no communication, no round charge)."""
        mask = np.asarray(mask, dtype=bool)
        return DistributedTable(
            self.sim,
            {c: a[mask] for c, a in self.columns.items()},
            self.machine_of[mask],
            words_per_record=self.words_per_record,
        )

    def with_columns(self, **new_cols: np.ndarray) -> "DistributedTable":
        """Add/replace columns computed locally (free).

        The table's ``words_per_record`` is a *provisioned budget* fixed at
        creation; annotations must fit it (as a real deployment would size
        its tuples up front).  Exceeding the budget is a programming error.
        """
        cols = dict(self.columns)
        for name, arr in new_cols.items():
            arr = np.asarray(arr)
            if arr.size != self.num_records:
                raise ValueError(f"column {name!r} length mismatch")
            cols[name] = arr
        if len(cols) > self.words_per_record:
            raise ValueError(
                f"record budget exhausted: {len(cols)} columns > "
                f"{self.words_per_record} provisioned words; create the "
                "table with a larger words_per_record"
            )
        return DistributedTable(
            self.sim,
            cols,
            self.machine_of,
            words_per_record=self.words_per_record,
        )

    def repartition_by_order(self, order: np.ndarray, *, context: str) -> "DistributedTable":
        """Reorder records globally and lay them out contiguously across
        machines — the data-movement step of a distributed sort.  Charges
        nothing itself (callers charge the primitive); validates that the
        shuffle volume per machine stays within local memory."""
        cols = {c: a[order] for c, a in self.columns.items()}
        out = DistributedTable(
            self.sim,
            cols,
            None,
            words_per_record=self.words_per_record,
        )
        # Communication volume: a record whose machine changes is "sent".
        moved = int((self.machine_of[order] != out.machine_of).sum())
        recv = np.zeros(self.sim.config.num_machines, dtype=np.int64)
        if self.num_records:
            np.add.at(recv, out.machine_of, self.words_per_record)
        self.sim.check_load(recv, context=f"{context}: receive volume")
        out._last_moved = moved  # type: ignore[attr-defined]
        return out
