"""[GSZ11]-style MPC primitives over :class:`DistributedTable`.

Each primitive costs ``O(1/γ)`` simulated rounds (one ``S``-ary tree
traversal plus a placement round — see :meth:`MPCConfig.rounds_for`) and is
implemented as a global numpy operation plus a repartition with load
checks.  These are exactly the subroutines Section 6 builds the algorithm
from:

* :func:`sort_table` — distributed sort [GSZ11];
* :func:`find_min_by_group` / :func:`reduce_by_key` — "Find Minimum"
  aggregation trees [DN19];
* :func:`segment_broadcast` — "Broadcast" down the same trees [DN19];
* :func:`join_lookup` — the sorted merge-join used for relabeling tuples
  (the Clustering / Merge / Contraction subroutines of Lemma 6.1).
"""

from __future__ import annotations

import numpy as np

from .simulator import DistributedTable, MPCSimulator

__all__ = [
    "sort_table",
    "find_min_by_group",
    "reduce_by_key",
    "segment_broadcast",
    "join_lookup",
    "broadcast_scalar",
]


def sort_table(table: DistributedTable, keys: list[str], *, context: str = "sort") -> DistributedTable:
    """Sort records lexicographically by ``keys`` (first key major).

    Charges one ``sort`` primitive. Ties are broken by the later keys, then
    stably by current position, so results are deterministic.
    """
    arrays = [table[k] for k in reversed(keys)]
    order = np.lexsort(arrays) if arrays else np.arange(len(table))
    out = table.repartition_by_order(order, context=context)
    table.sim.charge(
        "sort",
        records_moved=getattr(out, "_last_moved", len(table)),
        max_machine_load=int(out.machine_loads().max()) if len(out) else 0,
    )
    return out


def _group_starts(sorted_keys: list[np.ndarray]) -> np.ndarray:
    """Boolean leader mask over records already sorted by the keys."""
    n = sorted_keys[0].size
    if n == 0:
        return np.zeros(0, dtype=bool)
    lead = np.zeros(n, dtype=bool)
    lead[0] = True
    for arr in sorted_keys:
        lead[1:] |= arr[1:] != arr[:-1]
    return lead


def find_min_by_group(
    table: DistributedTable,
    group_keys: list[str],
    value_key: str,
    *,
    tie_key: str | None = None,
    context: str = "find_min",
) -> DistributedTable:
    """Per-group minimum of ``value_key`` (plus tie column) — the
    Find-Minimum subroutine.

    The table is sorted by ``group_keys + [value_key, tie_key]`` and the
    group leaders extracted; the result is a table of one record per group
    with all original columns (those of the winning record).
    """
    keys = group_keys + [value_key] + ([tie_key] if tie_key else [])
    s = sort_table(table, keys, context=context)
    lead = _group_starts([s[k] for k in group_keys])
    out = s.select(lead, context=context)
    table.sim.charge("find_min", records_moved=0, max_machine_load=0)
    return out


def reduce_by_key(
    table: DistributedTable,
    group_keys: list[str],
    value_key: str,
    op: str = "sum",
    *,
    context: str = "reduce",
) -> DistributedTable:
    """Per-group aggregate (``sum``, ``min``, ``max``, ``count``) via sort +
    segmented reduction."""
    s = sort_table(table, group_keys + [value_key], context=context)
    lead = _group_starts([s[k] for k in group_keys])
    idx = np.flatnonzero(lead)
    vals = s[value_key]
    if op == "count":
        agg = np.diff(np.append(idx, len(s)))
    elif op == "sum":
        agg = np.add.reduceat(vals, idx) if len(s) else np.zeros(0)
    elif op == "min":
        agg = np.minimum.reduceat(vals, idx) if len(s) else np.zeros(0)
    elif op == "max":
        agg = np.maximum.reduceat(vals, idx) if len(s) else np.zeros(0)
    else:
        raise ValueError(f"unknown op {op!r}")
    cols = {k: s[k][idx] for k in group_keys}
    cols["value"] = np.asarray(agg)
    out = DistributedTable(table.sim, cols, words_per_record=len(cols))
    table.sim.charge("reduce_by_key", records_moved=len(out), max_machine_load=0)
    return out


def segment_broadcast(
    table: DistributedTable,
    group_keys: list[str],
    source_col: str,
    dest_col: str,
    *,
    context: str = "segment_broadcast",
) -> DistributedTable:
    """Broadcast each group's *leader* value of ``source_col`` to every
    record of the group (sorted-run forward fill), storing it as
    ``dest_col``."""
    s = sort_table(table, group_keys, context=context)
    lead = _group_starts([s[k] for k in group_keys])
    vals = s[source_col]
    if len(s):
        gidx = np.cumsum(lead) - 1
        filled = vals[np.flatnonzero(lead)][gidx]
    else:
        filled = vals
    out = s.with_columns(**{dest_col: filled})
    table.sim.charge("segment_broadcast", records_moved=len(s), max_machine_load=0)
    return out


def join_lookup(
    table: DistributedTable,
    key_col: str,
    lookup_keys: np.ndarray,
    lookup_values: np.ndarray,
    dest_col: str,
    *,
    default=-1,
    context: str = "join",
) -> DistributedTable:
    """Annotate each record with ``lookup_values`` matched on ``key_col`` —
    the sorted merge-join used by the Clustering/Merge subroutines (the
    lookup side is itself a distributed table of (key, value) tuples; we
    pass it as arrays for convenience).

    Charges one ``join`` (both sides are sorted by key and co-partitioned).
    """
    lookup_keys = np.asarray(lookup_keys, dtype=np.int64)
    lookup_values = np.asarray(lookup_values)
    order = np.argsort(lookup_keys, kind="stable")
    lk, lv = lookup_keys[order], lookup_values[order]
    keys = np.asarray(table[key_col], dtype=np.int64)
    pos = np.searchsorted(lk, keys)
    pos = np.clip(pos, 0, max(lk.size - 1, 0))
    if lk.size:
        hit = lk[pos] == keys
        vals = np.where(hit, lv[pos], default)
    else:
        vals = np.full(keys.size, default, dtype=lookup_values.dtype if lookup_values.size else np.int64)
    out = table.with_columns(**{dest_col: vals})
    table.sim.charge("join", records_moved=len(table), max_machine_load=0)
    return out


def broadcast_scalar(sim: MPCSimulator, value, *, context: str = "broadcast") -> object:
    """Broadcast one word from a designated machine to all machines —
    one tree traversal."""
    sim.charge("segment_broadcast", records_moved=sim.config.num_machines, max_machine_load=0)
    return value
