"""Memory-budget resolution and chunk autotuning for the dense hot paths.

Every batched kernel in the repo bounds its dense scratch by processing
sources in chunks.  The chunk size used to be a hardcoded entry count
tuned for n≈10⁵; this module replaces it with a budget resolved at call
time:

1. an explicit ``budget`` argument (bytes) wins;
2. else the ``REPRO_MEM_BUDGET`` environment variable — plain bytes or a
   human-friendly size like ``512M`` / ``2G`` (binary units);
3. else a fixed fraction of currently *available* RAM (``MemAvailable``
   from ``/proc/meminfo``), floored at 32 MB so tiny containers still get
   the historical chunk behaviour.

Call sites convert the budget into chunk rows via :func:`chunk_rows`
(dense ``(rows, n)`` scratch) or :func:`chunk_edges` (flat per-edge
buffers), and report what they actually allocated through :func:`note` —
a thread-safe per-call-site peak-allocation ledger that the serving layer
surfaces in ``QueryEngine.stats()``.
"""

from __future__ import annotations

import os
import re
import threading

__all__ = [
    "ENV_VAR",
    "DEFAULT_FRACTION",
    "MIN_AUTO_BUDGET",
    "parse_bytes",
    "available_bytes",
    "resolve_budget",
    "chunk_rows",
    "chunk_edges",
    "note",
    "accounting",
    "reset_accounting",
]

ENV_VAR = "REPRO_MEM_BUDGET"

# Fraction of MemAvailable the auto budget takes.  Deliberately modest:
# the budget bounds *one* kernel's dense scratch, and builds run several
# kernels plus the graph itself side by side.
DEFAULT_FRACTION = 1.0 / 16.0

# Floor for the auto-resolved budget — the historical fixed chunk was
# 4M float64 entries (32 MB), and going below that on a starved machine
# only adds Python-level chunk overhead without saving real memory.
MIN_AUTO_BUDGET = 32 * 1024 * 1024

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([kmgt]?)(i?b?)\s*$", re.IGNORECASE)
_UNITS = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}

_lock = threading.Lock()
_sites: dict[str, dict[str, int]] = {}


def parse_bytes(text: str | int | float) -> int:
    """Parse a byte count: plain number, or suffixed like ``512M`` / ``2GiB``
    (binary units).  Raises ``ValueError`` on junk or non-positive sizes."""
    if isinstance(text, (int, float)):
        value = int(text)
    else:
        m = _SIZE_RE.match(str(text))
        if not m:
            raise ValueError(f"unparseable size: {text!r}")
        value = int(float(m.group(1)) * _UNITS[m.group(2).lower()])
    if value < 1:
        raise ValueError(f"memory budget must be positive, got {text!r}")
    return value


def available_bytes() -> int | None:
    """``MemAvailable`` from ``/proc/meminfo`` in bytes, ``None`` off-Linux."""
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return None


def resolve_budget(budget: int | None = None) -> int:
    """Resolve the scratch-memory budget in bytes.

    Explicit argument > ``REPRO_MEM_BUDGET`` env var > ``DEFAULT_FRACTION``
    of available RAM (floored at :data:`MIN_AUTO_BUDGET`).  An explicit or
    env budget is honoured verbatim — tests set tiny budgets to force
    chunking, so no floor applies to them.
    """
    if budget is not None:
        return parse_bytes(budget)
    env = os.environ.get(ENV_VAR)
    if env:
        return parse_bytes(env)
    avail = available_bytes()
    if avail is None:  # pragma: no cover - non-Linux fallback
        return MIN_AUTO_BUDGET
    return max(MIN_AUTO_BUDGET, int(avail * DEFAULT_FRACTION))


def chunk_rows(n: int, *, budget: int | None = None, entry_bytes: int = 8) -> int:
    """Rows per chunk so a dense ``(rows, n)`` block of ``entry_bytes``-wide
    entries stays within the resolved budget (always at least 1 row)."""
    return max(1, resolve_budget(budget) // max(n, 1) // entry_bytes)


def chunk_edges(*, budget: int | None = None, entry_bytes: int = 64) -> int:
    """Edges per chunk for flat per-edge buffers (stream passes, edge-list
    parsing).  ``entry_bytes`` is the per-edge working cost across all the
    parallel arrays a consumer typically holds."""
    return max(1, resolve_budget(budget) // entry_bytes)


def note(site: str, nbytes: int) -> None:
    """Record that ``site`` allocated a scratch block of ``nbytes``.

    Cheap enough to call per chunk; keeps the per-site peak and call count
    for :func:`accounting`.
    """
    nbytes = int(nbytes)
    with _lock:
        rec = _sites.get(site)
        if rec is None:
            _sites[site] = {"peak_bytes": nbytes, "calls": 1}
        else:
            rec["peak_bytes"] = max(rec["peak_bytes"], nbytes)
            rec["calls"] += 1


def accounting() -> dict[str, dict[str, int]]:
    """Snapshot of the per-call-site peak-allocation ledger."""
    with _lock:
        return {site: dict(rec) for site, rec in _sites.items()}


def reset_accounting() -> None:
    """Clear the ledger (tests and fresh benchmark phases)."""
    with _lock:
        _sites.clear()
