"""Exact cluster forests: the rooted trees behind every cluster.

Definition 4.2 of the paper: a cluster is a vertex set *plus a rooted tree*
whose root is the cluster center; the radius is the tree depth and every
stretch argument walks these trees.  The radius *recurrence* is tracked by
the engine; this module maintains the actual trees (parent pointers over
original vertices) so the Theorem 4.8 radius bound can be checked against
measured tree depths, and the trees themselves can be validated as proof
artifacts: tree edges are spanner edges, every cluster is spanned by one
tree rooted at its seed.

Re-rooting (:func:`reroot`) reverses the parent chain from the new root to
the old one — exactly what Step 4 of Section 4.1 does when a sampled
cluster absorbs a neighbor by an edge landing at an interior vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import WeightedGraph

__all__ = ["ClusterForest", "ClusterTreeStats", "reroot", "forest_stats"]


@dataclass
class ClusterForest:
    """Parent-pointer forest over the original vertices.

    ``parent[v] == -1`` marks a root; otherwise ``parent_eid[v]`` is the
    input-graph edge realizing the pointer.
    """

    parent: np.ndarray
    parent_eid: np.ndarray

    @classmethod
    def singletons(cls, n: int) -> "ClusterForest":
        return cls(
            parent=np.full(n, -1, dtype=np.int64),
            parent_eid=np.full(n, -1, dtype=np.int64),
        )

    def edge_ids(self) -> np.ndarray:
        """All edge ids used by parent pointers."""
        return np.unique(self.parent_eid[self.parent_eid >= 0])


def reroot(forest: ClusterForest, new_root: int) -> None:
    """Re-root ``new_root``'s tree at ``new_root`` (reverse the chain up)."""
    chain: list[int] = []
    eids: list[int] = []
    x = int(new_root)
    while forest.parent[x] >= 0:
        chain.append(x)
        eids.append(int(forest.parent_eid[x]))
        x = int(forest.parent[x])
    chain.append(x)
    # Reverse: old parent becomes child along the chain.
    for child, par, eid in zip(chain[1:], chain[:-1], eids):
        forest.parent[child] = par
        forest.parent_eid[child] = eid
    forest.parent[new_root] = -1
    forest.parent_eid[new_root] = -1


@dataclass(frozen=True)
class ClusterTreeStats:
    """Measured statistics of one cluster's tree."""

    root: int
    size: int
    hop_radius: int
    weighted_radius: float


def forest_stats(
    g: WeightedGraph,
    labels: np.ndarray,
    forest: ClusterForest,
    *,
    validate: bool = True,
) -> dict[int, ClusterTreeStats]:
    """Per-cluster tree statistics, validating structure on the way.

    Checks (when ``validate``): every parent pointer stays inside the
    vertex's cluster, is realized by a real edge of ``g`` joining exactly
    those endpoints, and the pointer graph is acyclic with one root per
    cluster.
    """
    n = g.n
    labels = np.asarray(labels, dtype=np.int64)
    depth_hops = np.full(n, -1, dtype=np.int64)
    depth_w = np.full(n, -1.0)

    def resolve(v: int) -> None:
        # Iterative chain walk with memoization; cycle-safe via step cap.
        chain = []
        x = v
        steps = 0
        while depth_hops[x] < 0:
            p = int(forest.parent[x])
            if p < 0:
                depth_hops[x] = 0
                depth_w[x] = 0.0
                break
            chain.append(x)
            x = p
            steps += 1
            if steps > n:
                raise AssertionError("cycle in cluster forest")
        for y in reversed(chain):
            p = int(forest.parent[y])
            e = int(forest.parent_eid[y])
            if validate:
                assert labels[y] == labels[p], "parent pointer crosses clusters"
                a, b = int(g.edges_u[e]), int(g.edges_v[e])
                assert {a, b} == {y, p}, "parent edge does not join y to parent"
            depth_hops[y] = depth_hops[p] + 1
            depth_w[y] = depth_w[p] + float(g.edges_w[forest.parent_eid[y]])

    for v in range(n):
        resolve(v)

    out: dict[int, ClusterTreeStats] = {}
    for c in np.unique(labels[labels >= 0]):
        members = np.flatnonzero(labels == c)
        roots = members[forest.parent[members] < 0]
        if validate:
            assert roots.size == 1, f"cluster {c} has {roots.size} roots"
        out[int(c)] = ClusterTreeStats(
            root=int(roots[0]) if roots.size else -1,
            size=int(members.size),
            hop_radius=int(depth_hops[members].max()),
            weighted_radius=float(depth_w[members].max()),
        )
    return out
