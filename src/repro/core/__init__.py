"""The paper's spanner algorithms and parameter formulas.

Entry points
------------
:func:`baswana_sen`
    The classic (2k-1)-spanner baseline (``t = k-1`` extreme).
:func:`cluster_merging`
    Section 4: ``O(log k)`` iterations, stretch ``O(k^{log 3})``.
:func:`two_phase_contraction`
    Section 3: ``O(sqrt(k))`` iterations, stretch ``O(k)``.
:func:`general_tradeoff`
    Section 5 / Theorem 1.1: any ``t``; ``t = log k`` gives stretch
    ``k^{1+o(1)}`` in ``O(log^2 k / log log k)`` iterations.
:func:`unweighted_spanner`
    Appendix B / Theorem 1.3: unweighted ``O(k)`` stretch in ``O(log k)``
    rounds.
"""

from . import membudget
from .baswana_sen import baswana_sen
from .cluster_merging import cluster_merging
from .contraction import two_phase_contraction
from .forest import ClusterForest, ClusterTreeStats, forest_stats, reroot
from .engine import EdgeSet, GrowthOutcome, phase2_edges, run_growth_iterations
from .general_tradeoff import default_t, general_tradeoff
from .params import (
    TradeoffPoint,
    apsp_parameters,
    bs_size_bound,
    bs_stretch_bound,
    cluster_count_bound,
    coerce_rng,
    mpc_rounds_bound,
    num_epochs,
    sampling_probability,
    size_bound,
    stretch_bound,
    stretch_exponent,
    total_iterations,
    tradeoff_table,
)
from .results import IterationStats, MPCRunStats, RoundStats, SpannerResult, StreamStats
from .unweighted import unweighted_spanner

__all__ = [
    "membudget",
    "baswana_sen",
    "cluster_merging",
    "two_phase_contraction",
    "general_tradeoff",
    "default_t",
    "unweighted_spanner",
    "EdgeSet",
    "ClusterForest",
    "ClusterTreeStats",
    "forest_stats",
    "reroot",
    "GrowthOutcome",
    "run_growth_iterations",
    "phase2_edges",
    "IterationStats",
    "MPCRunStats",
    "RoundStats",
    "StreamStats",
    "SpannerResult",
    "TradeoffPoint",
    "apsp_parameters",
    "bs_size_bound",
    "bs_stretch_bound",
    "cluster_count_bound",
    "coerce_rng",
    "mpc_rounds_bound",
    "num_epochs",
    "sampling_probability",
    "size_bound",
    "stretch_bound",
    "stretch_exponent",
    "total_iterations",
    "tradeoff_table",
]
