"""Cluster-merging spanner (Section 4) — the ``t = 1`` extreme, directly.

``ceil(log2 k)`` epochs; in epoch ``i`` clusters are sampled with the
doubly-exponentially decreasing probability ``n^{-2^{i-1}/k}`` and every
*unsampled cluster* merges wholesale into its closest sampled neighboring
cluster (or, lacking one, connects to each neighboring cluster once and
retires).  Radius triples per epoch, giving stretch ``O(k^{log 3})``
(Theorem 4.10 proof constant: ``k^{log 3}``), expected size
``O(n^{1+1/k} log k)`` (Theorem 4.13), in ``O(log k)`` iterations.

This module is deliberately an *independent implementation* from
:mod:`repro.core.general_tradeoff` (which realizes the same algorithm as
its ``t = 1`` case via explicit quotient graphs): here clusters live as
label arrays over the original vertices and whole clusters change label at
once.  The test-suite cross-validates the two code paths on shared seeds'
statistical behaviour and on the formal guarantees.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.graph import WeightedGraph
from .engine import EdgeSet, phase2_edges
from .params import coerce_rng
from .results import IterationStats, SpannerResult

__all__ = ["cluster_merging"]


def cluster_merging(
    g: WeightedGraph, k: int, *, rng=None, track_forest: bool = False
) -> SpannerResult:
    """Compute an ``O(k^{log 3})``-spanner in ``ceil(log2 k)`` epochs.

    Parameters
    ----------
    g:
        Input weighted graph.
    k:
        Size parameter; the spanner has expected size
        ``O(n^{1+1/k} log k)`` and stretch at most ``k^{log 3}``.
    rng:
        Seed or generator.
    track_forest:
        When true, maintain the exact rooted cluster trees (Definition
        4.2) and return them as ``extra['forest']`` — the proof artifact
        the Theorem 4.8 radius bound is checked against in the tests.

    Examples
    --------
    >>> from repro.graphs import erdos_renyi, edge_stretch
    >>> g = erdos_renyi(256, 0.2, weights="uniform", rng=3)
    >>> res = cluster_merging(g, k=4, rng=3)
    >>> edge_stretch(g, res.subgraph(g)).max_stretch <= 4 ** 1.585
    True
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = coerce_rng(rng)

    if k == 1 or g.m == 0:
        return SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="cluster-merging",
            k=k,
            t=1,
            iterations=0,
        )

    from .forest import ClusterForest, reroot

    n = g.n
    epochs = max(1, math.ceil(math.log2(k)))
    forest = ClusterForest.singletons(n) if track_forest else None
    labels = np.arange(n, dtype=np.int64)  # vertex -> cluster seed id
    cluster_alive = np.ones(n, dtype=bool)  # indexed by seed id
    cluster_radius = np.zeros(n)  # recurrence upper bound per seed
    edges = EdgeSet.from_arrays(n, g.edges_u, g.edges_v, g.edges_w)

    spanner_parts: list[np.ndarray] = []
    stats: list[IterationStats] = []

    for i in range(1, epochs + 1):
        p = float(n) ** (-(2.0 ** (i - 1)) / k)
        alive_ids = np.flatnonzero(cluster_alive)
        # Only clusters that still own vertices count (merged seeds keep
        # their flag off via the merge step below).
        num_clusters = int(alive_ids.size)
        alive_before = edges.num_alive

        sampled = np.zeros(n, dtype=bool)
        if num_clusters:
            sampled[alive_ids] = rng.random(num_clusters) < p
        num_sampled = int(sampled[alive_ids].sum()) if num_clusters else 0

        eu, ev, ew, eeid = edges.alive_view()
        edge_pos = np.flatnonzero(edges.alive)
        added: list[np.ndarray] = []
        merge_target = np.full(n, -1, dtype=np.int64)  # per unsampled seed
        merge_eid = np.full(n, -1, dtype=np.int64)  # the join edge used
        died = np.zeros(n, dtype=bool)

        if eu.size:
            cu, cv = labels[eu], labels[ev]
            # Directed arcs whose tail cluster is alive and unsampled.
            tails = np.concatenate([cu, cv])
            heads = np.concatenate([cv, cu])
            aw = np.concatenate([ew, ew])
            aeid = np.concatenate([eeid, eeid])
            apos = np.concatenate([edge_pos, edge_pos])
            keep = cluster_alive[tails] & ~sampled[tails]
            tails, heads, aw, aeid, apos = (
                tails[keep],
                heads[keep],
                aw[keep],
                aeid[keep],
                apos[keep],
            )
        else:
            tails = np.zeros(0, dtype=np.int64)

        if tails.size:
            order = np.lexsort((aeid, aw, heads, tails))
            t_s, h_s, w_s, e_s, p_s = (
                tails[order],
                heads[order],
                aw[order],
                aeid[order],
                apos[order],
            )
            lead = np.ones(t_s.size, dtype=bool)
            lead[1:] = (t_s[1:] != t_s[:-1]) | (h_s[1:] != h_s[:-1])
            lidx = np.flatnonzero(lead)
            gt, gh, gw, geid = t_s[lidx], h_s[lidx], w_s[lidx], e_s[lidx]
            g_sampled = sampled[gh]

            # Closest sampled neighbor per tail cluster.
            gorder = np.lexsort((geid, gw, ~g_sampled, gt))
            gt_o = gt[gorder]
            first = np.ones(gt_o.size, dtype=bool)
            first[1:] = gt_o[1:] != gt_o[:-1]
            f_idx = gorder[first]
            f_tail, f_samp, f_w, f_eid, f_head = (
                gt[f_idx],
                g_sampled[f_idx],
                gw[f_idx],
                geid[f_idx],
                gh[f_idx],
            )

            merge_target[f_tail[f_samp]] = f_head[f_samp]
            merge_eid[f_tail[f_samp]] = f_eid[f_samp]
            join_w = np.full(n, np.inf)
            join_w[f_tail[f_samp]] = f_w[f_samp]
            died[f_tail[~f_samp]] = True

            g_is_join = np.zeros(gt.size, dtype=bool)
            g_is_join[f_idx[f_samp]] = True
            g_connect = (~g_is_join) & (gw < join_w[gt])
            g_discard = g_connect | g_is_join

            added.append(geid[g_connect])
            added.append(f_eid[f_samp])

            group_of_arc = np.cumsum(lead) - 1
            edges.kill(p_s[g_discard[group_of_arc]])

        # Unsampled clusters with no alive incident edges silently retire.
        idle = cluster_alive & ~sampled & (merge_target < 0) & ~died
        died |= idle

        # ---- Apply merges --------------------------------------------------
        merged = np.flatnonzero(merge_target >= 0)
        if forest is not None and merged.size:
            # Definition 4.2 / Step 4: hang each absorbed cluster's tree off
            # the join edge, re-rooted at the edge's endpoint inside it.
            # Uses pre-merge labels, so it must run before the relabel.
            for c in merged:
                e = int(merge_eid[c])
                a, b = int(g.edges_u[e]), int(g.edges_v[e])
                y, x = (a, b) if labels[a] == c else (b, a)
                reroot(forest, y)
                forest.parent[y] = x
                forest.parent_eid[y] = e
        if merged.size:
            # Radius recurrence (Theorem 4.8): absorbing cluster's radius
            # grows to at most r + 2 r_max_absorbed + 1.
            grow = np.zeros(n)
            np.maximum.at(grow, merge_target[merged], 2.0 * cluster_radius[merged] + 1.0)
            targets = np.flatnonzero(grow > 0)
            cluster_radius[targets] += grow[targets]

            relabel = np.arange(n, dtype=np.int64)
            relabel[merged] = merge_target[merged]
            labels = relabel[labels]
            cluster_alive[merged] = False
        cluster_alive[died] = False

        # ---- Step 5: drop intra-cluster edges ------------------------------
        if edges.num_alive:
            m = edges.alive
            intra = labels[edges.u[m]] == labels[edges.v[m]]
            pos = np.flatnonzero(m)
            edges.kill(pos[intra])

        live = np.flatnonzero(cluster_alive)
        stats.append(
            IterationStats(
                epoch=i,
                iteration=1,
                num_clusters=num_clusters,
                num_sampled=num_sampled,
                num_alive_edges=alive_before,
                num_added=int(sum(a.size for a in added)),
                sampling_probability=p,
                max_radius_bound=float(cluster_radius[live].max()) if live.size else 0.0,
            )
        )
        spanner_parts.extend(added)
        if edges.num_alive == 0:
            break

    # ---- Phase 2: vertex-to-cluster clean-up -------------------------------
    # Remaining edges run between alive clusters; each *vertex* endpoint adds
    # the minimum edge to each neighboring cluster (Section 4 Phase 2).
    extra = phase2_edges(edges, labels)
    spanner_parts.append(extra)

    eids = (
        np.unique(np.concatenate(spanner_parts))
        if spanner_parts
        else np.zeros(0, dtype=np.int64)
    )
    return SpannerResult(
        edge_ids=eids,
        algorithm="cluster-merging",
        k=k,
        t=1,
        iterations=len(stats),
        stats=stats,
        phase2_added=int(extra.size),
        extra={
            "epochs": epochs,
            **(
                {"forest": forest, "final_labels": labels}
                if forest is not None
                else {}
            ),
        },
    )
