"""Closed-form parameter formulas from the paper.

Every theorem in the paper trades off three quantities, all controlled by
the growth parameter ``t`` (iterations per epoch before a contraction):

* iterations:  ``l * t`` with ``l = ceil(log k / log(t+1))`` epochs,
* stretch:     ``O(k^s)`` with ``s = log(2t+1) / log(t+1)``,
* size:        ``O(n^{1+1/k} * (t + log k))`` edges in expectation.

This module centralizes those formulas so algorithms, tests and the
benchmark tables all agree on what "the paper's bound" is.  Constant factors
hidden by O(.) are chosen from the proofs: Theorem 5.11 proves stretch at
most ``2 k^s`` and Theorem 4.10 proves ``k^{log 3}`` (constant 1) for the
``t = 1`` special case — we expose both the exact proof constants and the
asymptotic forms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "coerce_rng",
    "stretch_exponent",
    "num_epochs",
    "total_iterations",
    "stretch_bound",
    "size_bound",
    "sampling_probability",
    "cluster_count_bound",
    "bs_stretch_bound",
    "bs_size_bound",
    "TradeoffPoint",
    "tradeoff_table",
    "mpc_rounds_bound",
    "apsp_parameters",
]


def coerce_rng(rng) -> np.random.Generator:
    """Normalize a seed-or-generator argument into a ``Generator``.

    Every randomized algorithm in the repo accepts ``rng=None`` (fresh
    entropy), an integer seed, a ``SeedSequence``, or an existing
    ``Generator`` (passed through untouched, so callers can thread one
    generator across several constructions).  This helper is the single
    definition of that contract — use it instead of re-spelling the
    ``default_rng(...) if not isinstance(...)`` idiom per algorithm.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def stretch_exponent(t: int) -> float:
    """``s = log(2t+1) / log(t+1)`` (Theorem 1.1).

    Monotone decreasing in ``t``: ``s(1) = log 3 ≈ 1.585``, ``s(∞) → 1``.
    """
    if t < 1:
        raise ValueError("t must be >= 1")
    return math.log(2 * t + 1) / math.log(t + 1)


def num_epochs(k: int, t: int) -> int:
    """``l = ceil(log k / log(t+1))`` epochs so that ``(t+1)^l >= k``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if t < 1:
        raise ValueError("t must be >= 1")
    if k == 1:
        return 0
    l = math.ceil(math.log(k) / math.log(t + 1) - 1e-12)
    return max(l, 1)


def total_iterations(k: int, t: int) -> int:
    """Total Baswana–Sen-style iterations: ``t`` per epoch, ``l`` epochs."""
    return num_epochs(k, t) * t


def sampling_probability(n: int, k: int, t: int, epoch: int) -> float:
    """Per-iteration cluster sampling probability in epoch ``epoch`` (1-based):
    ``n^{-(t+1)^{epoch-1} / k}`` (Section 5.1, Step B1 footnote)."""
    if epoch < 1:
        raise ValueError("epoch is 1-based")
    expo = (t + 1) ** (epoch - 1) / k
    return float(n) ** (-expo)


def cluster_count_bound(n: int, k: int, t: int, epoch: int) -> float:
    """Expected number of surviving super-nodes after epoch ``epoch``:
    ``n^{1 - ((t+1)^epoch - 1)/k}`` (Lemma 5.12)."""
    expo = ((t + 1) ** epoch - 1) / k
    return float(n) ** max(1.0 - expo, 0.0)


def stretch_bound(k: int, t: int, *, exact_constant: bool = True) -> float:
    """Stretch guarantee ``2 k^s`` of the general algorithm (Theorem 5.11).

    With ``exact_constant=False``, returns ``k^s`` (the asymptotic form).
    ``t`` is clamped to ``k - 1`` (the algorithm never runs more growth
    iterations than that); at ``t = k - 1`` the bound evaluates to
    ``2 (2k - 1)`` — note this is *weaker* than plain Baswana–Sen's
    ``2k - 1`` (:func:`bs_stretch_bound`) because the general algorithm's
    clean-up phase keeps one edge per super-node *pair* rather than per
    (vertex, cluster) pair.
    """
    if k == 1:
        return 1.0
    t_eff = min(max(t, 1), k - 1)
    s = stretch_exponent(t_eff)
    c = 2.0 if exact_constant else 1.0
    return c * float(k) ** s


def size_bound(n: int, k: int, t: int, *, constant: float = 4.0) -> float:
    """Expected-size guarantee ``c * n^{1+1/k} * (t + log2 k + 1)``.

    The paper's analysis (Lemma 5.14 + Phase 2) gives
    ``O(n^{1+1/k} (t + log k))``; ``constant`` is the hidden constant used
    when benches check measured sizes against the bound.  The default 4 is
    deliberately generous — the point of the size benches is the *growth
    shape*, and measured constants are reported alongside.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    lk = math.log2(k) if k > 1 else 0.0
    return constant * float(n) ** (1.0 + 1.0 / k) * (t + lk + 1.0)


def bs_stretch_bound(k: int) -> float:
    """Baswana–Sen exact stretch guarantee ``2k - 1``."""
    return float(2 * k - 1)


def bs_size_bound(n: int, k: int, *, constant: float = 4.0) -> float:
    """Baswana–Sen expected size ``O(k n^{1+1/k})``."""
    return constant * k * float(n) ** (1.0 + 1.0 / k)


def mpc_rounds_bound(k: int, t: int, gamma: float, *, constant: float = 8.0) -> float:
    """Theorem 1.1 round bound ``O((1/γ) · t log k / log(t+1))``.

    Each logical iteration costs ``O(1/γ)`` simulated MPC rounds (Lemma 6.1
    primitives); ``constant`` covers the number of primitive invocations per
    iteration in our implementation.
    """
    if not 0 < gamma <= 1:
        raise ValueError("gamma must be in (0, 1]")
    iters = max(total_iterations(k, t), 1)
    return constant * iters / gamma


@dataclass(frozen=True)
class TradeoffPoint:
    """One row of the paper's round/stretch/size tradeoff (Corollary 1.2)."""

    t: int
    k: int
    epochs: int
    iterations: int
    stretch_exponent: float
    stretch: float
    size_factor: float  # multiplier on n^{1+1/k}

    @property
    def label(self) -> str:
        if self.t == 1:
            return "t=1 (Cor 1.2(1): fastest, stretch k^log3)"
        if self.t >= self.k - 1:
            return (
                f"t=k-1 (one epoch; dedicated Baswana–Sen gives {2 * self.k - 1:g})"
            )
        return f"t={self.t}"


def tradeoff_table(k: int, ts: list[int] | None = None) -> list[TradeoffPoint]:
    """The Corollary 1.2 / Theorem 5.15 tradeoff rows for a given ``k``.

    Default ``ts`` covers the paper's named settings: ``t = 1``
    (cluster-merging), ``t = log k``, ``t = sqrt(k)``, and ``t = k - 1``
    (Baswana–Sen).
    """
    if ts is None:
        ts = sorted(
            {
                1,
                max(1, int(round(math.log2(max(k, 2))))),
                max(1, int(round(math.sqrt(k)))),
                max(1, k - 1),
            }
        )
    rows = []
    for t in ts:
        rows.append(
            TradeoffPoint(
                t=t,
                k=k,
                epochs=num_epochs(k, t),
                iterations=total_iterations(k, t),
                stretch_exponent=stretch_exponent(t),
                stretch=stretch_bound(k, t),
                size_factor=t + (math.log2(k) if k > 1 else 0.0) + 1.0,
            )
        )
    return rows


def apsp_parameters(n: int, *, t: int | None = None) -> tuple[int, int]:
    """The Section 7 APSP setting: ``k = log2 n`` and ``t = log2 log2 n``
    (rounded, at least 1).  Returns ``(k, t)``."""
    if n < 4:
        return 1, 1
    k = max(2, int(round(math.log2(n))))
    if t is None:
        t = max(1, int(round(math.log2(math.log2(n)))))
    return k, t
