"""Two-phase cluster-contraction spanner (Section 3) — ``t = sqrt(k)``.

Warm-up algorithm: run ``ceil(sqrt(k))`` Baswana–Sen growth iterations
(probability ``n^{-1/k}``), contract the surviving clusters into a
super-graph, then run the *full* Baswana–Sen algorithm with parameter
``t' = ceil(sqrt(k))`` on the super-graph as a black box.  Phase-one
clusters have radius ``O(sqrt(k))`` and the super-graph spanner has stretch
``O(sqrt(k))``, so composed paths have stretch ``O(k)`` (Theorem 3.4), with
size ``O(sqrt(k) · n^{1+1/k})`` (Theorem 3.1) in ``O(sqrt(k))`` iterations.

Note: the paper's Section 3 text twice writes ``t = t' = sqrt(n)``; the
analysis (radius ``O(t t') = O(k)``, size ``O(sqrt(k) n^{1+1/k})``) requires
``sqrt(k)``, which is what we implement (see DESIGN.md).

The paper states this section for unweighted graphs; since our phase
machinery (shared with Section 5) already handles weights via the
strictly-closer rule, the implementation accepts weighted inputs, and the
test-suite checks the ``O(k)`` stretch empirically on both.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.graph import WeightedGraph
from ..graphs.quotient import quotient_edges
from .baswana_sen import baswana_sen
from .engine import EdgeSet, run_growth_iterations
from .params import coerce_rng
from .results import SpannerResult

__all__ = ["two_phase_contraction"]


def two_phase_contraction(g: WeightedGraph, k: int, *, rng=None) -> SpannerResult:
    """Compute an ``O(k)``-stretch spanner in ``O(sqrt(k))`` iterations.

    Parameters
    ----------
    g:
        Input graph (weighted accepted; the paper states the unweighted
        case).
    k:
        Stretch parameter; size is ``O(sqrt(k) n^{1+1/k})``.
    rng:
        Seed or generator.

    Examples
    --------
    >>> from repro.graphs import erdos_renyi, edge_stretch
    >>> g = erdos_renyi(256, 0.3, rng=5)
    >>> res = two_phase_contraction(g, k=9, rng=5)
    >>> edge_stretch(g, res.subgraph(g)).max_stretch <= 4 * 9
    True
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = coerce_rng(rng)

    if k == 1 or g.m == 0:
        return SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="two-phase-contraction",
            k=k,
            t=1,
            iterations=0,
        )

    t1 = max(1, math.ceil(math.sqrt(k)))
    t1 = min(t1, max(k - 1, 1))
    n = g.n
    p = float(n) ** (-1.0 / k)

    # ---- Phase one: t1 growth iterations on the original graph ------------
    edges = EdgeSet.from_arrays(n, g.edges_u, g.edges_v, g.edges_w)
    outcome = run_growth_iterations(edges, iterations=t1, probability=p, rng=rng, epoch=1)
    parts = [outcome.spanner_eids]

    # ---- Contract: build the super-graph -----------------------------------
    sn_labels = outcome.labels
    clustered = sn_labels >= 0
    seeds = np.unique(sn_labels[clustered]) if clustered.any() else np.zeros(0, np.int64)
    seed_to_new = np.full(n, -1, dtype=np.int64)
    seed_to_new[seeds] = np.arange(seeds.size)
    new_id = np.full(n, -1, dtype=np.int64)
    new_id[clustered] = seed_to_new[sn_labels[clustered]]
    # Retired vertices have no alive edges (Lemma 3.2), so the quotient only
    # needs labels for clustered vertices; map retirees to fresh singletons
    # to keep the labelling total.
    retired = np.flatnonzero(~clustered)
    new_id[retired] = seeds.size + np.arange(retired.size)

    eu, ev, ew, eeid = edges.alive_view()
    q = quotient_edges(new_id, eu, ev, ew, eeid)

    iterations = t1
    if q.m:
        # ---- Phase two: black-box Baswana–Sen on the super-graph ----------
        t2 = max(2, math.ceil(math.sqrt(k)))
        super_g = WeightedGraph(q.num_nodes, q.u, q.v, q.w, validate=False)
        # Positions may shift under WeightedGraph's canonical dedup; map the
        # super-graph's edges back to provenance ids explicitly.
        rep_of_pair = {
            (int(a), int(b)): int(r) for a, b, r in zip(q.u, q.v, q.rep_edge_id)
        }
        sub = baswana_sen(super_g, t2, rng=rng)
        chosen = [
            rep_of_pair[(int(super_g.edges_u[e]), int(super_g.edges_v[e]))]
            for e in sub.edge_ids
        ]
        parts.append(np.asarray(chosen, dtype=np.int64))
        iterations += sub.iterations

    eids = np.unique(np.concatenate(parts)) if parts else np.zeros(0, dtype=np.int64)
    return SpannerResult(
        edge_ids=eids,
        algorithm="two-phase-contraction",
        k=k,
        t=t1,
        iterations=iterations,
        stats=outcome.stats,
        extra={"super_nodes": int(seeds.size), "super_edges": int(q.m)},
    )
