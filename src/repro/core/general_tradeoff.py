"""The general round/stretch tradeoff algorithm (Section 5, Theorem 1.1).

The algorithm proceeds in ``l = ceil(log k / log(t+1))`` epochs.  Epoch
``i`` runs ``t`` Baswana–Sen-style growth iterations on the *current
quotient graph* with the fixed sampling probability
``n^{-(t+1)^{i-1}/k}``, then contracts the resulting clusters into
super-nodes (keeping one minimum-weight edge per super-node pair, Step C).
A final clean-up phase adds the surviving inter-cluster edges.

Guarantees (Theorem 5.15):

* iterations ``t · l = O(t log k / log(t+1))``,
* stretch ``O(k^s)`` with ``s = log(2t+1)/log(t+1)`` (proof constant 2),
* expected size ``O(n^{1+1/k} (t + log k))``.

Special cases recovered exactly:

* ``t = k-1``: one epoch with ``p = n^{-1/k}`` — Baswana–Sen itself;
* ``t = 1``: contraction after every iteration — the Section 4
  cluster-merging algorithm (see :mod:`repro.core.cluster_merging` for the
  independent direct implementation the tests cross-validate against);
* ``t = ceil(sqrt(k))``: two epochs — the Section 3 warm-up.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.graph import WeightedGraph
from ..graphs.quotient import quotient_edges
from .engine import EdgeSet, run_growth_iterations
from .params import coerce_rng, num_epochs, sampling_probability
from .results import SpannerResult

__all__ = ["general_tradeoff", "default_t"]


def default_t(k: int) -> int:
    """The paper's recommended setting ``t = log k`` (stretch ``k^{1+o(1)}``
    in ``O(log^2 k / log log k)`` iterations)."""
    return max(1, int(round(math.log2(max(k, 2)))))


def general_tradeoff(
    g: WeightedGraph,
    k: int,
    t: int | None = None,
    *,
    rng=None,
) -> SpannerResult:
    """Compute an ``O(k^s)``-spanner with ``s = log(2t+1)/log(t+1)``.

    Parameters
    ----------
    g:
        Input weighted graph.
    k:
        Size/stretch parameter: size is ``O(n^{1+1/k}(t + log k))``.
    t:
        Growth iterations per epoch; ``None`` selects ``log k``.  Values
        above ``k - 1`` are clamped to ``k - 1`` (beyond that the algorithm
        is Baswana–Sen and extra iterations would only waste rounds).
    rng:
        Seed or generator.

    Returns
    -------
    SpannerResult
        ``extra['epoch_contractions']`` holds ``(epoch, super_nodes_after)``
        rows; ``extra['final_super_nodes']`` the Corollary 5.13 quantity.

    Examples
    --------
    >>> from repro.graphs import erdos_renyi, edge_stretch
    >>> g = erdos_renyi(300, 0.15, weights="uniform", rng=7)
    >>> res = general_tradeoff(g, k=4, t=2, rng=7)
    >>> h = res.subgraph(g)
    >>> edge_stretch(g, h).max_stretch <= 2 * 4 ** 1.46  # 2 k^s, s(2)≈1.465
    True
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = coerce_rng(rng)
    if t is None:
        t = default_t(k)
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t}")
    t_eff = min(t, max(k - 1, 1))

    if k == 1 or g.m == 0:
        return SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="general-tradeoff",
            k=k,
            t=t,
            iterations=0,
        )

    n = g.n
    l = num_epochs(k, t_eff)
    edges = EdgeSet.from_arrays(n, g.edges_u, g.edges_v, g.edges_w)
    sn_radius = np.zeros(n)
    vertex_sn = np.arange(n, dtype=np.int64)  # original vertex -> super-node

    spanner_parts: list[np.ndarray] = []
    stats = []
    contractions: list[tuple[int, int]] = []
    iterations_run = 0

    for i in range(1, l + 1):
        p = sampling_probability(n, k, t_eff, i)
        outcome = run_growth_iterations(
            edges,
            iterations=t_eff,
            probability=p,
            rng=rng,
            epoch=i,
            node_radius=sn_radius,
        )
        iterations_run += t_eff
        spanner_parts.append(outcome.spanner_eids)
        stats.extend(outcome.stats)

        # ---- Step C: contract the final clustering ------------------------
        sn_labels = outcome.labels
        clustered = sn_labels >= 0
        seeds = np.unique(sn_labels[clustered]) if clustered.any() else np.zeros(0, np.int64)
        seed_to_new = np.full(edges.num_nodes, -1, dtype=np.int64)
        seed_to_new[seeds] = np.arange(seeds.size)
        new_id = np.empty(edges.num_nodes, dtype=np.int64)
        new_id[clustered] = seed_to_new[sn_labels[clustered]]
        retired = np.flatnonzero(~clustered)
        new_id[retired] = seeds.size + np.arange(retired.size)
        new_num = int(seeds.size + retired.size)

        new_radius = np.zeros(new_num)
        if clustered.any():
            new_radius[new_id[clustered]] = outcome.radius_bound[clustered]
        new_radius[new_id[retired]] = sn_radius[retired]

        eu, ev, ew, eeid = edges.alive_view()
        q = quotient_edges(new_id, eu, ev, ew, eeid)
        edges = EdgeSet.from_arrays(new_num, q.u, q.v, q.w, q.rep_edge_id)
        sn_radius = new_radius
        vertex_sn = new_id[vertex_sn]
        contractions.append((i, new_num))

        if edges.u.size == 0:
            break

    # ---- Phase 2: surviving quotient edges --------------------------------
    # After the final contraction each super-node pair retains exactly its
    # minimum-weight connecting edge, so Phase 2 ("min edge per (node,
    # cluster) pair") is precisely the set of all remaining edges.
    _, _, _, remaining = edges.alive_view()
    extra = np.unique(remaining)
    edges.kill_all()
    spanner_parts.append(extra)

    eids = (
        np.unique(np.concatenate(spanner_parts))
        if spanner_parts
        else np.zeros(0, dtype=np.int64)
    )
    return SpannerResult(
        edge_ids=eids,
        algorithm="general-tradeoff",
        k=k,
        t=t,
        iterations=iterations_run,
        stats=stats,
        phase2_added=int(extra.size),
        extra={
            "epoch_contractions": contractions,
            "final_super_nodes": contractions[-1][1] if contractions else n,
            "t_effective": t_eff,
        },
    )
