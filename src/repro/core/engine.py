"""The shared Baswana–Sen-style iteration engine.

Every algorithm in the paper is built from the same inner loop (Section 5.1
Step B, which for ``t = k-1`` *is* Baswana–Sen's first phase):

1. sample the current clusters with probability ``p``;
2. every super-node whose cluster was not sampled is processed
   individually: it joins the "closest" (minimum edge weight) sampled
   neighboring cluster — adding that connecting edge to the spanner and
   also one edge to every neighboring cluster that is *strictly closer*
   than the joined one — or, if no neighboring cluster was sampled, adds
   one minimum edge per neighboring cluster and retires;
3. intra-cluster edges are removed.

:func:`run_growth_iterations` executes ``t`` such iterations over an
arbitrary edge list (original graph or quotient graph — the caller decides)
and returns the surviving clustering, the edges added to the spanner
(identified by *caller-provided provenance ids*, so they always refer to the
original input graph), and per-iteration instrumentation.

Vectorization strategy (this is the hot loop of the whole library): the
per-super-node/per-neighboring-cluster grouping is done with one
``np.lexsort`` over directed arcs per iteration, after which group minima,
per-node choices and group discards are all segment operations — no Python
loop over nodes or edges.  This mirrors the paper's own MPC implementation
(Section 6), which performs the same grouping with a distributed sort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .results import IterationStats

__all__ = ["EdgeSet", "GrowthOutcome", "run_growth_iterations", "phase2_edges"]


@dataclass
class EdgeSet:
    """A mutable edge list over ``num_nodes`` super-nodes with provenance.

    ``eid`` carries the id of the original-graph edge each record descends
    from; ``alive`` flags unprocessed records.  The engine never reallocates
    — it only flips ``alive`` bits — so callers can cheaply extract the
    surviving sub-list afterwards.

    The alive count is cached and maintained incrementally by :meth:`kill` /
    :meth:`kill_all`, so :attr:`num_alive` (read several times per
    iteration) no longer re-sums the boolean array.  Code that writes
    ``alive`` directly must call :meth:`refresh_alive_count` afterwards.
    """

    num_nodes: int
    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    eid: np.ndarray
    alive: np.ndarray
    _alive_count: int = field(default=-1, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self._alive_count < 0:
            self._alive_count = int(self.alive.sum())

    @classmethod
    def from_arrays(cls, num_nodes: int, u, v, w, eid=None) -> "EdgeSet":
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = np.asarray(w, dtype=np.float64)
        if eid is None:
            eid = np.arange(u.size, dtype=np.int64)
        else:
            eid = np.asarray(eid, dtype=np.int64)
        return cls(num_nodes, u, v, w, eid, np.ones(u.size, dtype=bool))

    def alive_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        m = self.alive
        return self.u[m], self.v[m], self.w[m], self.eid[m]

    def kill(self, positions: np.ndarray) -> None:
        """Mark the records at ``positions`` dead (duplicates and
        already-dead positions are fine)."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return
        pos = np.unique(pos)
        self._alive_count -= int(self.alive[pos].sum())
        self.alive[pos] = False

    def kill_all(self) -> None:
        """Mark every record dead."""
        if self._alive_count:
            self.alive[:] = False
        self._alive_count = 0

    def refresh_alive_count(self) -> None:
        """Re-derive the cached count after a direct write to ``alive``."""
        self._alive_count = int(self.alive.sum())

    @property
    def num_alive(self) -> int:
        return self._alive_count


@dataclass
class GrowthOutcome:
    """What ``t`` growth iterations produced.

    Attributes
    ----------
    labels:
        Per super-node: id of its final cluster (the seed super-node's id),
        or ``-1`` for retired super-nodes.
    spanner_eids:
        Provenance ids of the edges added to the spanner.
    stats:
        One :class:`IterationStats` per executed iteration.
    radius_bound:
        Per super-node: for nodes in final clusters, the recurrence upper
        bound on the cluster's weighted-stretch radius (same value for all
        members); 0 for retired nodes.
    """

    labels: np.ndarray
    spanner_eids: np.ndarray
    stats: list[IterationStats]
    radius_bound: np.ndarray


def _group_leaders(sort_idx: np.ndarray, keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
    """Boolean mask (in sorted order) marking the first arc of each
    ``(keys1, keys2)`` group; inputs are the *sorted* key arrays."""
    lead = np.ones(sort_idx.size, dtype=bool)
    if sort_idx.size > 1:
        lead[1:] = (keys1[1:] != keys1[:-1]) | (keys2[1:] != keys2[:-1])
    return lead


def run_growth_iterations(
    edges: EdgeSet,
    *,
    iterations: int,
    probability,
    rng: np.random.Generator,
    epoch: int = 1,
    node_radius: np.ndarray | None = None,
    start_labels: np.ndarray | None = None,
) -> GrowthOutcome:
    """Run ``iterations`` Baswana–Sen-style growth iterations in place.

    Parameters
    ----------
    edges:
        Mutable edge set (``alive`` flags are updated in place).
    iterations:
        Number of iterations ``t``.
    probability:
        Either a float (used every iteration) or a callable
        ``iteration -> float`` (1-based).
    rng:
        Source of sampling randomness.
    epoch:
        Epoch index recorded into the stats (cosmetic).
    node_radius:
        Internal weighted-stretch-radius upper bound per super-node (from
        previous contractions); defaults to zeros.  Used only for the
        radius-recurrence instrumentation, never for algorithmic decisions.
    start_labels:
        Initial clustering; defaults to singletons (identity).  Must use
        seed-node ids as labels (``labels[x] == x`` for seeds).

    Notes
    -----
    All processing within one iteration is *simultaneous*: every decision
    reads the previous iteration's clustering, then additions are applied
    before discards, exactly as in the paper (an edge both "moved to the
    spanner" and "discarded" ends up in the spanner and dead — that is what
    "move" means).
    """
    n = edges.num_nodes
    if node_radius is None:
        node_radius = np.zeros(n)
    else:
        node_radius = np.asarray(node_radius, dtype=np.float64).copy()
    if start_labels is None:
        labels = np.arange(n, dtype=np.int64)
    else:
        labels = np.asarray(start_labels, dtype=np.int64).copy()

    # Cluster radius bound, indexed by seed id; seeded with the seed node's
    # internal radius.
    cluster_radius = node_radius.copy()

    spanner: list[np.ndarray] = []
    stats: list[IterationStats] = []

    for j in range(1, iterations + 1):
        p = probability(j) if callable(probability) else float(probability)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"sampling probability {p} outside [0, 1]")

        active = labels >= 0
        cluster_ids = np.unique(labels[active]) if active.any() else np.zeros(0, np.int64)
        num_clusters = int(cluster_ids.size)
        alive_before = edges.num_alive

        # --- Step B1: sample clusters -------------------------------------
        sampled_flag = np.zeros(n, dtype=bool)  # indexed by seed id
        if num_clusters:
            sampled_flag[cluster_ids] = rng.random(num_clusters) < p
        num_sampled = int(sampled_flag[cluster_ids].sum()) if num_clusters else 0

        node_sampled = active & sampled_flag[np.where(labels >= 0, labels, 0)]
        processing = active & ~node_sampled

        eu, ev, ew, eeid = edges.alive_view()
        edge_pos = np.flatnonzero(edges.alive)

        added_this_iter: list[np.ndarray] = []
        new_labels = labels.copy()
        # Every processing node retires unless it joins below.
        new_labels[processing] = -1

        join_edge_per_node = np.full(n, -1, dtype=np.int64)  # provenance id
        join_cluster_per_node = np.full(n, -1, dtype=np.int64)

        if eu.size:
            # --- Build directed arcs with processing tails ----------------
            tails = np.concatenate([eu, ev])
            heads = np.concatenate([ev, eu])
            aw = np.concatenate([ew, ew])
            aeid = np.concatenate([eeid, eeid])
            apos = np.concatenate([edge_pos, edge_pos])
            keep = processing[tails]
            tails, heads, aw, aeid, apos = (
                tails[keep],
                heads[keep],
                aw[keep],
                aeid[keep],
                apos[keep],
            )
        else:
            tails = np.zeros(0, dtype=np.int64)

        if tails.size:
            hc = labels[heads]  # head's cluster (>= 0: invariant)
            order = np.lexsort((aeid, aw, hc, tails))
            tails_s, hc_s, aw_s, aeid_s, apos_s = (
                tails[order],
                hc[order],
                aw[order],
                aeid[order],
                apos[order],
            )
            lead = _group_leaders(order, tails_s, hc_s)
            lead_idx = np.flatnonzero(lead)
            # Per-(tail, cluster) group leader data:
            gt = tails_s[lead_idx]
            gc = hc_s[lead_idx]
            gw = aw_s[lead_idx]
            geid = aeid_s[lead_idx]
            g_start = lead_idx
            g_end = np.append(lead_idx[1:], tails_s.size)
            g_sampled = sampled_flag[gc]

            # --- Choose the join target per tail ---------------------------
            # Sort group leaders by (tail, unsampled-last, weight, eid);
            # the first leader of each tail then tells the node's fate.
            gorder = np.lexsort((geid, gw, ~g_sampled, gt))
            gt_o = gt[gorder]
            first = np.ones(gt_o.size, dtype=bool)
            first[1:] = gt_o[1:] != gt_o[:-1]
            first_leader = gorder[first]  # index into group arrays, per tail

            f_tail = gt[first_leader]
            f_sampled = g_sampled[first_leader]
            f_w = gw[first_leader]
            f_eid = geid[first_leader]
            f_cluster = gc[first_leader]

            joiners = f_sampled
            join_edge_per_node[f_tail[joiners]] = f_eid[joiners]
            join_cluster_per_node[f_tail[joiners]] = f_cluster[joiners]

            # --- Decide per-group actions ----------------------------------
            # Map each group to its tail's join weight (inf when retiring,
            # which makes every neighboring group "strictly closer" and thus
            # connected + discarded — exactly Step B4).
            join_w = np.full(n, np.inf)
            join_w[f_tail[joiners]] = f_w[joiners]

            g_join_w = join_w[gt]
            g_is_join_group = np.zeros(gt.size, dtype=bool)
            g_is_join_group[first_leader[joiners]] = True
            # A neighboring group is connected-and-discarded iff it is
            # strictly closer than the join edge (or the node retires).
            g_connect = (~g_is_join_group) & (gw < g_join_w)
            g_discard = g_connect | g_is_join_group

            added_this_iter.append(geid[g_connect])
            added_this_iter.append(join_edge_per_node[f_tail[joiners]])

            # --- Apply discards --------------------------------------------
            # Expand group decisions back onto sorted arcs, then onto edges.
            group_of_arc = np.cumsum(lead) - 1  # per sorted arc
            arc_discard = g_discard[group_of_arc]
            edges.kill(apos_s[arc_discard])

            new_labels[f_tail[joiners]] = f_cluster[joiners]

        # Processing nodes with no alive incident edges retire silently
        # (already handled by the default -1 assignment).

        # --- Radius-recurrence instrumentation -----------------------------
        # Lemma 5.8: r_j <= r_{j-1} + 2 * (max internal radius absorbed) + 1.
        joined_nodes = np.flatnonzero(join_cluster_per_node >= 0)
        if joined_nodes.size:
            targets = join_cluster_per_node[joined_nodes]
            growth = np.zeros(n)
            np.maximum.at(growth, targets, 2.0 * node_radius[joined_nodes] + 1.0)
            grew = np.flatnonzero(growth > 0)
            cluster_radius[grew] += growth[grew]

        # --- Step B6: drop intra-cluster edges -----------------------------
        if edges.num_alive:
            m = edges.alive
            lu = new_labels[edges.u[m]]
            lv = new_labels[edges.v[m]]
            intra = lu == lv
            pos = np.flatnonzero(m)
            edges.kill(pos[intra])

        labels = new_labels
        num_added = int(sum(a.size for a in added_this_iter))
        spanner.extend(added_this_iter)
        live_clusters = np.unique(labels[labels >= 0])
        max_rb = float(cluster_radius[live_clusters].max()) if live_clusters.size else 0.0
        stats.append(
            IterationStats(
                epoch=epoch,
                iteration=j,
                num_clusters=num_clusters,
                num_sampled=num_sampled,
                num_alive_edges=alive_before,
                num_added=num_added,
                sampling_probability=p,
                max_radius_bound=max_rb,
            )
        )

    out_radius = np.zeros(n)
    act = labels >= 0
    if act.any():
        out_radius[act] = cluster_radius[labels[act]]
    eids = (
        np.unique(np.concatenate(spanner)) if spanner else np.zeros(0, dtype=np.int64)
    )
    return GrowthOutcome(
        labels=labels, spanner_eids=eids, stats=stats, radius_bound=out_radius
    )


def phase2_edges(edges: EdgeSet, labels: np.ndarray) -> np.ndarray:
    """The final clean-up phase (Phase 2 of Sections 4 and 5).

    For every super-node ``v`` incident to a remaining alive edge and every
    neighboring final cluster ``c``, the minimum-weight edge of ``E(v, c)``
    joins the spanner; everything else is discarded.  Marks all alive edges
    dead and returns the provenance ids added.
    """
    eu, ev, ew, eeid = edges.alive_view()
    if eu.size == 0:
        return np.zeros(0, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    tails = np.concatenate([eu, ev])
    heads = np.concatenate([ev, eu])
    aw = np.concatenate([ew, ew])
    aeid = np.concatenate([eeid, eeid])
    hc = labels[heads]
    if (hc < 0).any():
        raise AssertionError(
            "alive edge endpoint outside any final cluster — Lemma 5.6 violated"
        )
    order = np.lexsort((aeid, aw, hc, tails))
    t_s, c_s = tails[order], hc[order]
    lead = _group_leaders(order, t_s, c_s)
    chosen = aeid[order][lead]
    edges.kill_all()
    return np.unique(chosen)
