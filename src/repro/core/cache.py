"""Bounded LRU cache for distance rows (and other per-key payloads).

The seed oracle kept its per-source distance rows in a plain dict and, on
reaching the bound, evicted by wholesale ``clear()`` — so steady-state
query traffic with more than ``capacity`` distinct sources periodically
dropped *every* hot row and thrashed back to full Dijkstra runs
(``query_many`` additionally stopped caching altogether once full).  This
module is the shared fix: one recency-ordered bounded cache used by the
:class:`~repro.distances.oracle.SpannerDistanceOracle` and the
:class:`~repro.service.engine.QueryEngine`, with hit/miss/eviction
counters so serving layers can report cache effectiveness.

``dict`` preserves insertion order and ``move_to_end``-style reordering is
done by delete+reinsert, so no ``OrderedDict`` import is needed; all
operations are O(1).
"""

from __future__ import annotations

import numpy as np

__all__ = ["LRURowCache", "answer_pairs_cached"]


class LRURowCache:
    """A bounded mapping with least-recently-*used* eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries held.  Must be >= 1; inserting beyond it
        evicts the least recently used entry (both :meth:`get` hits and
        :meth:`put` refreshes count as uses).

    Examples
    --------
    >>> c = LRURowCache(2)
    >>> c.put("a", 1); c.put("b", 2)
    >>> c.get("a")          # "a" becomes most-recent
    1
    >>> c.put("c", 3)       # evicts "b", the least recently used
    >>> c.get("b") is None
    True
    >>> sorted(c.keys())
    ['a', 'c']
    """

    __slots__ = ("capacity", "_data", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: dict = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        """Membership test — does *not* refresh recency (use :meth:`get`)."""
        return key in self._data

    def get(self, key, default=None):
        """Return the cached value (refreshing its recency) or ``default``."""
        try:
            value = self._data.pop(key)
        except KeyError:
            self.misses += 1
            return default
        self._data[key] = value  # reinsert at the most-recent end
        self.hits += 1
        return value

    def peek(self, key, default=None):
        """Return the cached value *without* touching recency or counters."""
        return self._data.get(key, default)

    def put(self, key, value) -> None:
        """Insert/refresh ``key``; evict the LRU entry past capacity."""
        self._data.pop(key, None)
        self._data[key] = value
        if len(self._data) > self.capacity:
            oldest = next(iter(self._data))
            del self._data[oldest]
            self.evictions += 1

    def keys(self):
        """Keys from least to most recently used."""
        return list(self._data)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> dict:
        """Counters for serving-layer reporting (JSON-ready)."""
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }


def answer_pairs_cached(cache: LRURowCache, pairs: np.ndarray, solve_rows) -> np.ndarray:
    """Batched pair answering over a per-source row cache.

    The shared ``query_many`` planning of the oracle and the serving
    engine: group the ``(r, 2)`` pairs by source, gather rows already
    cached, hand the distinct *missing* sources to ``solve_rows(sources)
    -> (len(sources), n)`` in one call, and gather per group.  Two
    invariants live here exactly once: local references are held for every
    row the call touches (LRU eviction triggered by the fresh rows must
    not drop one mid-call), and cached rows are *copies*, never views
    into the solver's dense batch buffer (a view would pin the whole
    block for as long as the row survives in the cache).
    """
    sources, inv = np.unique(pairs[:, 0], return_inverse=True)
    row_map = {}
    missing = []
    for s in sources.tolist():
        row = cache.get(s)
        if row is None:
            missing.append(s)
        else:
            row_map[s] = row
    if missing:
        rows = solve_rows(np.asarray(missing, dtype=np.int64))
        for j, s in enumerate(missing):
            row = rows[j].copy()
            row_map[s] = row
            cache.put(s, row)
    out = np.empty(pairs.shape[0])
    order = np.argsort(inv, kind="stable")
    bounds = np.searchsorted(inv[order], np.arange(sources.size + 1))
    for j, s in enumerate(sources.tolist()):
        idx = order[bounds[j] : bounds[j + 1]]
        out[idx] = row_map[s][pairs[idx, 1]]
    return out
