"""Unweighted ``O(k)``-stretch spanner (Theorem 1.3 / Appendix B).

The paper adapts Parter–Yogev's Congested Clique construction [PY18] to
MPC.  Vertices are split by the size of their capped BFS ball:

* **sparse** vertices (ball of ``4k`` hops fits under ``Θ(n^{γ/2})``
  vertices): all their incident spanner decisions are made by locally
  simulating Baswana–Sen with *shared randomness* inside the collected
  ball.  Because every Baswana–Sen decision about an edge incident to ``v``
  within ``k`` iterations depends only on the ``(k+1)``-hop neighborhood
  and on the shared random bits, the union of the local simulations equals
  one global Baswana–Sen run restricted to edges with a sparse endpoint —
  which is how we realize it here (the *rounds* differ, and are accounted
  analytically: ball collection is ``O(log k)`` rounds of graph
  exponentiation, the local simulation is free).
* **dense** vertices (ball hits the cap, hence holds ``Ω(n^{γ/4})``
  vertices): a random hitting set ``Z`` of ``Õ(n^{1-γ/4})`` vertices hits
  every dense ball w.h.p.; each dense vertex stores its BFS path to an
  assigned hitter, and a ``(4/γ)``-stretch Baswana–Sen spanner of the
  auxiliary graph on ``Z`` (edges = original edges between differently
  assigned dense vertices) covers dense–dense edges.

Guarantees: stretch ``O(k/γ) = O(k)`` for constant ``γ``; size
``O(k · n^{1+1/k})`` + ``O(k n)`` path edges; ``O(log k)`` MPC rounds;
total memory ``O(m + n^{1+γ})`` dominated by ball replication.

Vectorization: ball collection is one
:func:`~repro.graphs.distances.batched_capped_bfs` call (all ``n``
sources advance one BFS level per numpy step, with segment counting for
the cap), hitter selection is a ``searchsorted`` over the flat ball
arrays, and the dense-vertex BFS paths are walked root-ward in lockstep
via the batched ``parent_pos`` index.  The pre-vectorization per-source
implementation is preserved verbatim as
:func:`unweighted_spanner_reference`; the equivalence tests and the
benchmark suite's before/after harness certify bit-identical outputs.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.distances import batched_capped_bfs
from ..graphs.graph import WeightedGraph
from .baswana_sen import baswana_sen
from .params import coerce_rng
from .results import SpannerResult

__all__ = ["unweighted_spanner", "unweighted_spanner_reference"]


def _capped_bfs(g: WeightedGraph, source: int, hops: int, cap: int):
    """BFS from ``source`` up to ``hops`` levels or ``cap`` vertices.

    Returns ``(order, parent_edge, complete)`` where ``parent_edge`` maps
    each reached vertex to the edge id used to reach it (-1 for the source)
    and ``complete`` is False iff the cap stopped the exploration.

    The scalar per-source reference that
    :func:`~repro.graphs.distances.batched_capped_bfs` batches; kept for
    the reference implementation and the cross-checking tests.
    """
    csr = g.csr
    parent_edge = {int(source): -1}
    order = [int(source)]
    frontier = [int(source)]
    for _ in range(hops):
        nxt: list[int] = []
        for x in frontier:
            lo, hi = csr.indptr[x], csr.indptr[x + 1]
            for y, eid in zip(csr.indices[lo:hi], csr.edge_ids[lo:hi]):
                y = int(y)
                if y not in parent_edge:
                    parent_edge[y] = int(eid)
                    order.append(y)
                    nxt.append(y)
                    if len(order) >= cap:
                        return order, parent_edge, False
        if not nxt:
            break
        frontier = nxt
    return order, parent_edge, True


def _validate_args(g: WeightedGraph, k: int, gamma: float) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0 < gamma <= 1:
        raise ValueError(f"gamma must be in (0, 1], got {gamma}")
    if not g.is_unweighted:
        raise ValueError("unweighted_spanner requires an unweighted graph")


def unweighted_spanner(
    g: WeightedGraph,
    k: int,
    *,
    gamma: float = 0.5,
    rng=None,
    ball_cap: int | None = None,
    account_mpc: bool = False,
) -> SpannerResult:
    """Compute an ``O(k)``-stretch spanner of an unweighted graph.

    Parameters
    ----------
    g:
        Unweighted input graph (all weights must equal 1).
    k:
        Stretch parameter.
    gamma:
        The MPC local-memory exponent ``γ`` (machines hold ``O(n^γ)``
        words); controls the ball cap ``Θ(n^{γ/2})`` and the auxiliary
        spanner's stretch ``4/γ``.
    rng:
        Seed or generator.
    ball_cap:
        Override the ``Θ(n^{γ/2})`` cap (useful in tests).
    account_mpc:
        When true, additionally run the Appendix B.2.1 graph-exponentiation
        ball growing under the MPC simulator and report *measured* rounds
        and communication volume in ``extra['mpc_ball_growing']`` (the
        analytic figures remain in ``extra['analytic_rounds']``).

    Returns
    -------
    SpannerResult
        ``extra`` records the sparse/dense split, hitting-set size, an
        analytic round count, and the simulated total-memory figure
        ``O(m + n^{1+γ})`` (ball replication).
    """
    _validate_args(g, k, gamma)
    rng = coerce_rng(rng)

    if k == 1 or g.m == 0:
        return SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="unweighted-py18",
            k=k,
            t=None,
            iterations=0,
        )

    n = g.n
    if ball_cap is None:
        ball_cap = max(4, int(math.ceil(n ** (gamma / 2.0))))
    hops = 4 * k

    # ---- Classify vertices by capped ball growth ---------------------------
    # One batched multi-source BFS instead of n scalar traversals; the flat
    # (indptr, ball, parent_edge, parent_pos) arrays drive everything below.
    indptr, ball, parent_edge, parent_pos, sparse = batched_capped_bfs(
        g, np.arange(n, dtype=np.int64), hops, ball_cap
    )
    total_ball_words = int(indptr[-1])

    parts: list[np.ndarray] = []

    # ---- Sparse side: shared-randomness Baswana–Sen ------------------------
    # One global run with a fixed seed equals the union of all local
    # simulations (see module docstring); keep edges with a sparse endpoint.
    bs = baswana_sen(g, k, rng=rng)
    if bs.edge_ids.size:
        bu = g.edges_u[bs.edge_ids]
        bv = g.edges_v[bs.edge_ids]
        keep = sparse[bu] | sparse[bv]
        parts.append(bs.edge_ids[keep])

    dense = np.flatnonzero(~sparse)
    assign = np.full(n, -1, dtype=np.int64)
    hitters = np.zeros(0, dtype=np.int64)
    fallback = 0
    if dense.size:
        # ---- Hitting set --------------------------------------------------
        # Dense balls hold >= ball_cap vertices; sample so each is hit w.h.p.
        p_hit = min(1.0, 4.0 * math.log(max(n, 2)) / ball_cap)
        hit_flag = rng.random(n) < p_hit
        hitters = np.flatnonzero(hit_flag)

        # First hitter per dense ball, in BFS order: the flat positions of
        # all hit ball entries are ascending, so one searchsorted per ball
        # start finds each ball's earliest hit (if it lies before the end).
        hit_pos = np.flatnonzero(hit_flag[ball])
        start = indptr[dense]
        end = indptr[dense + 1]
        if hit_pos.size:
            nxt = np.searchsorted(hit_pos, start)
            cand = hit_pos[np.minimum(nxt, hit_pos.size - 1)]
            has = (nxt < hit_pos.size) & (cand < end)
        else:
            cand = start
            has = np.zeros(dense.size, dtype=bool)

        # The w.h.p. event failed for some balls: fall back to the sparse
        # treatment (keep those vertices' Baswana–Sen edges).
        fb_vs = dense[~has]
        fallback = int(fb_vs.size)
        if fallback and bs.edge_ids.size:
            fb = np.zeros(n, dtype=bool)
            fb[fb_vs] = True
            bu = g.edges_u[bs.edge_ids]
            bv = g.edges_v[bs.edge_ids]
            parts.append(bs.edge_ids[fb[bu] | fb[bv]])

        hit_dense = dense[has]
        z_pos = cand[has]
        assign[hit_dense] = ball[z_pos]
        # BFS-tree paths hitter -> v, walked root-ward in lockstep: every
        # step gathers one parent edge per still-walking ball.
        root = indptr[hit_dense]
        cur = z_pos.copy()
        walking = cur != root
        while walking.any():
            parts.append(parent_edge[cur[walking]])
            cur[walking] = parent_pos[cur[walking]]
            walking = cur != root

        # ---- Auxiliary graph on the hitting set ----------------------------
        du = g.edges_u
        dv = g.edges_v
        both_dense = (assign[du] >= 0) & (assign[dv] >= 0)
        za, zb = assign[du[both_dense]], assign[dv[both_dense]]
        rep = np.flatnonzero(both_dense)
        diff = za != zb
        za, zb, rep = za[diff], zb[diff], rep[diff]
        if za.size:
            lo = np.minimum(za, zb)
            hi = np.maximum(za, zb)
            order = np.lexsort((rep, hi, lo))
            lo, hi, rep = lo[order], hi[order], rep[order]
            lead = np.ones(lo.size, dtype=bool)
            lead[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
            lo, hi, rep = lo[lead], hi[lead], rep[lead]
            # Compact hitter ids for the auxiliary graph.
            zs, inv_lo = np.unique(np.concatenate([lo, hi]), return_inverse=True)
            aux = WeightedGraph(
                zs.size,
                inv_lo[: lo.size],
                inv_lo[lo.size :],
                np.ones(lo.size),
                validate=False,
            )
            k_aux = max(2, math.ceil(2.0 / gamma))  # stretch 2k_aux-1 ~ 4/gamma
            aux_res = baswana_sen(aux, k_aux, rng=rng)
            # The compact relabeling is monotone and the (lo, hi) pairs are
            # unique and already (lo, hi)-sorted, so the graph constructor's
            # canonical edge order is exactly ours: aux edge id i *is* the
            # i-th pair, and the representative lookup is one gather.
            parts.append(rep[aux_res.edge_ids])

    eids = np.unique(np.concatenate(parts)) if parts else np.zeros(0, dtype=np.int64)
    # Analytic MPC round count: O(log(4k)) exponentiation doublings for ball
    # collection plus O(1/gamma) rounds for each of the O(1) shuffles.
    rounds = math.ceil(math.log2(max(hops, 2))) + math.ceil(1.0 / gamma) * 4
    mpc_accounting = None
    if account_mpc:
        from ..mpc_impl.ball_growing import grow_balls_mpc

        growth = grow_balls_mpc(g, hops, gamma=gamma, cap=ball_cap)
        mpc_accounting = {
            "rounds": growth.rounds,
            "total_words": growth.total_words,
            "memory_budget": growth.memory_budget(),
        }
    return SpannerResult(
        edge_ids=eids,
        algorithm="unweighted-py18",
        k=k,
        t=None,
        iterations=rounds,
        extra={
            "num_sparse": int(sparse.sum()),
            "num_dense": int(dense.size),
            "ball_cap": int(ball_cap),
            "hitting_set_size": int(hitters.size),
            "fallbacks": int(fallback),
            "analytic_rounds": rounds,
            "total_memory_words": int(g.m + total_ball_words),
            **({"mpc_ball_growing": mpc_accounting} if mpc_accounting else {}),
        },
    )


# ---------------------------------------------------------------------------
# Frozen pre-vectorization implementation (per-source scalar BFS, per-dense
# hitter scans and path walks, dict-based auxiliary-edge mapping).  The
# equivalence tests and the benchmark suite's before/after harness compare
# against it.  Do not optimize this code.
# ---------------------------------------------------------------------------


def unweighted_spanner_reference(
    g: WeightedGraph,
    k: int,
    *,
    gamma: float = 0.5,
    rng=None,
    ball_cap: int | None = None,
) -> SpannerResult:
    """Pre-vectorization :func:`unweighted_spanner`, frozen as a reference.

    Bit-identical to :func:`unweighted_spanner` on every ``(graph, k,
    gamma, rng, ball_cap)`` — the equivalence tests assert it, and the
    benchmark suite measures the ball-collection speedup against this one.
    (``account_mpc`` is omitted: it only adds instrumentation.)
    """
    _validate_args(g, k, gamma)
    rng = coerce_rng(rng)

    if k == 1 or g.m == 0:
        return SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="unweighted-py18",
            k=k,
            t=None,
            iterations=0,
        )

    n = g.n
    if ball_cap is None:
        ball_cap = max(4, int(math.ceil(n ** (gamma / 2.0))))
    hops = 4 * k

    sparse = np.zeros(n, dtype=bool)
    balls: dict[int, tuple[list[int], dict[int, int]]] = {}
    ball_sizes = np.zeros(n, dtype=np.int64)
    for v in range(n):
        order, parent_edge, complete = _capped_bfs(g, v, hops, ball_cap)
        ball_sizes[v] = len(order)
        if complete:
            sparse[v] = True
        else:
            balls[v] = (order, parent_edge)

    parts: list[np.ndarray] = []

    bs = baswana_sen(g, k, rng=rng)
    if bs.edge_ids.size:
        bu = g.edges_u[bs.edge_ids]
        bv = g.edges_v[bs.edge_ids]
        keep = sparse[bu] | sparse[bv]
        parts.append(bs.edge_ids[keep])

    dense = np.flatnonzero(~sparse)
    assign = np.full(n, -1, dtype=np.int64)
    hitters = np.zeros(0, dtype=np.int64)
    fallback = 0
    if dense.size:
        p_hit = min(1.0, 4.0 * math.log(max(n, 2)) / ball_cap)
        hit_flag = rng.random(n) < p_hit
        hitters = np.flatnonzero(hit_flag)

        for v in dense:
            order, parent_edge = balls[int(v)]
            z = next((x for x in order if hit_flag[x]), None)
            if z is None:
                fallback += 1
                if bs.edge_ids.size:
                    bu = g.edges_u[bs.edge_ids]
                    bv = g.edges_v[bs.edge_ids]
                    parts.append(bs.edge_ids[(bu == v) | (bv == v)])
                continue
            assign[v] = z
            path: list[int] = []
            cur = int(z)
            while cur != int(v):
                eid = parent_edge[cur]
                path.append(eid)
                a, b = int(g.edges_u[eid]), int(g.edges_v[eid])
                cur = a if b == cur else b
            parts.append(np.asarray(path, dtype=np.int64))

        du = g.edges_u
        dv = g.edges_v
        both_dense = (assign[du] >= 0) & (assign[dv] >= 0)
        za, zb = assign[du[both_dense]], assign[dv[both_dense]]
        rep = np.flatnonzero(both_dense)
        diff = za != zb
        za, zb, rep = za[diff], zb[diff], rep[diff]
        if za.size:
            lo = np.minimum(za, zb)
            hi = np.maximum(za, zb)
            order = np.lexsort((rep, hi, lo))
            lo, hi, rep = lo[order], hi[order], rep[order]
            lead = np.ones(lo.size, dtype=bool)
            lead[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
            lo, hi, rep = lo[lead], hi[lead], rep[lead]
            zs, inv_lo = np.unique(np.concatenate([lo, hi]), return_inverse=True)
            aux = WeightedGraph(
                zs.size,
                inv_lo[: lo.size],
                inv_lo[lo.size :],
                np.ones(lo.size),
                validate=False,
            )
            pair_rep = {
                (int(a), int(b)): int(r)
                for a, b, r in zip(inv_lo[: lo.size], inv_lo[lo.size :], rep)
            }
            k_aux = max(2, math.ceil(2.0 / gamma))
            aux_res = baswana_sen(aux, k_aux, rng=rng)
            chosen = [
                pair_rep[
                    (
                        min(int(aux.edges_u[e]), int(aux.edges_v[e])),
                        max(int(aux.edges_u[e]), int(aux.edges_v[e])),
                    )
                ]
                for e in aux_res.edge_ids
            ]
            parts.append(np.asarray(chosen, dtype=np.int64))

    eids = np.unique(np.concatenate(parts)) if parts else np.zeros(0, dtype=np.int64)
    rounds = math.ceil(math.log2(max(hops, 2))) + math.ceil(1.0 / gamma) * 4
    return SpannerResult(
        edge_ids=eids,
        algorithm="unweighted-py18",
        k=k,
        t=None,
        iterations=rounds,
        extra={
            "num_sparse": int(sparse.sum()),
            "num_dense": int(dense.size),
            "ball_cap": int(ball_cap),
            "hitting_set_size": int(hitters.size),
            "fallbacks": int(fallback),
            "analytic_rounds": rounds,
            "total_memory_words": int(g.m + ball_sizes.sum()),
        },
    )
