"""Baswana–Sen (2k-1)-spanner — the paper's baseline and the ``t = k-1``
extreme of the general tradeoff.

Reference: S. Baswana, S. Sen, *A simple and linear time randomized
algorithm for computing sparse spanners in weighted graphs*, Random
Structures & Algorithms 30(4), 2007 [BS07].

The algorithm runs ``k - 1`` cluster-growth iterations with the fixed
sampling probability ``n^{-1/k}`` (one epoch, no contraction), then a
vertex-cluster clean-up phase.  Guarantees: stretch exactly at most
``2k - 1``; expected size ``O(k · n^{1+1/k})``; ``k`` iterations — which is
exactly why the paper calls it slow and what the contraction framework
accelerates.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import WeightedGraph
from .engine import EdgeSet, phase2_edges, run_growth_iterations
from .params import coerce_rng
from .results import SpannerResult

__all__ = ["baswana_sen"]


def baswana_sen(g: WeightedGraph, k: int, *, rng=None) -> SpannerResult:
    """Compute a (2k-1)-spanner of ``g``.

    Parameters
    ----------
    g:
        Input weighted graph.
    k:
        Stretch parameter (``k >= 1``); ``k = 1`` returns all edges.
    rng:
        Seed or :class:`numpy.random.Generator`.

    Returns
    -------
    SpannerResult
        With ``iterations == k - 1`` and stretch at most ``2k - 1``
        (validated by the test-suite via exact edge-stretch measurement).

    Examples
    --------
    >>> from repro.graphs import erdos_renyi, edge_stretch
    >>> g = erdos_renyi(200, 0.2, weights="uniform", rng=1)
    >>> res = baswana_sen(g, k=3, rng=1)
    >>> edge_stretch(g, res.subgraph(g)).max_stretch <= 5.0
    True
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = coerce_rng(rng)

    if k == 1 or g.m == 0:
        # A 1-spanner must preserve all distances exactly: keep every edge
        # (we already deduplicated parallel edges to the minimum weight).
        return SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="baswana-sen",
            k=k,
            t=max(k - 1, 1),
            iterations=0,
        )

    p = float(g.n) ** (-1.0 / k)
    edges = EdgeSet.from_arrays(g.n, g.edges_u, g.edges_v, g.edges_w)
    outcome = run_growth_iterations(
        edges, iterations=k - 1, probability=p, rng=rng, epoch=1
    )
    extra = phase2_edges(edges, outcome.labels)
    eids = np.union1d(outcome.spanner_eids, extra)
    return SpannerResult(
        edge_ids=eids,
        algorithm="baswana-sen",
        k=k,
        t=k - 1,
        iterations=k - 1,
        stats=outcome.stats,
        phase2_added=int(extra.size),
    )
