"""Result records shared by every spanner algorithm.

All algorithms return a :class:`SpannerResult`: the chosen edge ids of the
*original* input graph plus enough instrumentation (per-iteration cluster
counts, per-epoch radii, simulated round counts when applicable) to
regenerate the paper's tables.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

import numpy as np

from ..graphs.graph import WeightedGraph

__all__ = [
    "IterationStats",
    "MPCRunStats",
    "StreamStats",
    "RoundStats",
    "SpannerResult",
]


@dataclass(frozen=True)
class _JsonStats:
    """Shared JSON round-trip for the typed instrumentation records."""

    def to_json(self) -> dict:
        """Plain-dict form, the exact value stored in ``SpannerResult.extra``."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "_JsonStats":
        """Rebuild from :meth:`to_json` output; unknown keys are ignored so
        older snapshots stay loadable as the schema grows."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class MPCRunStats(_JsonStats):
    """Measured MPC-simulator accounting for one run (the typed form of the
    ``extra['mpc']`` payload produced by :func:`repro.mpc_impl.spanner_mpc`)."""

    rounds: int = 0
    primitive_calls: int = 0
    total_messages: int = 0
    peak_machine_load: int = 0
    num_machines: int = 0
    machine_memory: int = 0
    gamma: float = 0.0


@dataclass(frozen=True)
class StreamStats(_JsonStats):
    """Streaming-pass accounting (the typed form of ``extra['stream']``)."""

    passes: int = 0
    peak_working_records: int = 0
    per_pass_working: list = field(default_factory=list)
    edges_streamed: int = 0


@dataclass(frozen=True)
class RoundStats(_JsonStats):
    """Simulated round count shared by every distributed model (the typed
    form of the scalar ``extra['rounds']``)."""

    rounds: int = 0
    collection_rounds: int = 0

    @property
    def total(self) -> int:
        return self.rounds + self.collection_rounds


@dataclass(frozen=True)
class IterationStats:
    """Instrumentation for one Baswana–Sen-style iteration.

    Attributes
    ----------
    epoch, iteration:
        1-based indices (iteration within the epoch).
    num_clusters:
        Alive clusters *before* this iteration's sampling.
    num_sampled:
        Clusters surviving the sampling step.
    num_alive_edges:
        Unprocessed edges before the iteration.
    num_added:
        Spanner edges added during the iteration.
    sampling_probability:
        The ``p`` used.
    max_radius_bound:
        Upper bound on the weighted-stretch radius of any cluster after the
        iteration (tracked via the Lemma 5.8 recurrence, not by measuring
        trees — see DESIGN.md).
    """

    epoch: int
    iteration: int
    num_clusters: int
    num_sampled: int
    num_alive_edges: int
    num_added: int
    sampling_probability: float
    max_radius_bound: float


@dataclass
class SpannerResult:
    """Output of a spanner construction.

    Attributes
    ----------
    edge_ids:
        Sorted unique ids into the input graph's edge arrays.
    algorithm:
        Human-readable algorithm name.
    k, t:
        The stretch parameter and growth parameter used (``t`` may be None
        for algorithms without one).
    iterations:
        Logical Baswana–Sen-style iteration count actually executed (the
        quantity the paper's round bounds are about, before the ``O(1/γ)``
        MPC factor).
    stats:
        Per-iteration instrumentation.
    phase2_added:
        Edges added by the final clean-up phase.
    extra:
        Algorithm-specific extras (e.g. simulated MPC rounds).
    """

    edge_ids: np.ndarray
    algorithm: str
    k: int
    t: int | None
    iterations: int
    stats: list[IterationStats] = field(default_factory=list)
    phase2_added: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def num_edges(self) -> int:
        """Spanner size in edges."""
        return int(self.edge_ids.size)

    def subgraph(self, g: WeightedGraph) -> WeightedGraph:
        """Materialize the spanner as a :class:`WeightedGraph` over ``g``."""
        return g.subgraph_from_edge_ids(self.edge_ids)

    def epochs_executed(self) -> int:
        """Number of distinct epochs that ran."""
        return len({s.epoch for s in self.stats})

    def cluster_trajectory(self) -> list[tuple[int, int, int]]:
        """``(epoch, iteration, num_clusters)`` rows — the Lemma 4.12 / 5.12
        decay data."""
        return [(s.epoch, s.iteration, s.num_clusters) for s in self.stats]

    # -- typed views over ``extra`` ----------------------------------------
    #
    # The instrumentation dataclasses serialize *into* ``extra`` (as the
    # same plain dicts the models always stored), so every existing
    # ``res.extra["mpc"]`` / ``res.extra["stream"]`` / ``res.extra["rounds"]``
    # consumer keeps working while new code reads and writes typed records.

    @property
    def mpc_stats(self) -> MPCRunStats | None:
        """Typed view of ``extra['mpc']`` (None when the run had no MPC
        accounting)."""
        data = self.extra.get("mpc")
        return MPCRunStats.from_json(data) if data is not None else None

    @mpc_stats.setter
    def mpc_stats(self, stats: MPCRunStats) -> None:
        self.extra["mpc"] = stats.to_json()

    @property
    def stream_stats(self) -> StreamStats | None:
        """Typed view of ``extra['stream']``."""
        data = self.extra.get("stream")
        return StreamStats.from_json(data) if data is not None else None

    @stream_stats.setter
    def stream_stats(self, stats: StreamStats) -> None:
        self.extra["stream"] = stats.to_json()

    @property
    def round_stats(self) -> RoundStats | None:
        """Typed view of the simulated round count (``extra['rounds']``,
        plus ``extra['collection_rounds']`` when a pipeline recorded one)."""
        rounds = self.extra.get("rounds")
        if rounds is None:
            return None
        return RoundStats(
            rounds=int(rounds),
            collection_rounds=int(self.extra.get("collection_rounds", 0)),
        )

    @round_stats.setter
    def round_stats(self, stats: RoundStats) -> None:
        self.extra["rounds"] = stats.rounds
        if stats.collection_rounds:
            self.extra["collection_rounds"] = stats.collection_rounds

    def to_record(self) -> dict:
        """Flatten into one row for tabular output (CSV / sweep results).

        Scalar ``extra`` entries appear under their own key; dict entries
        are flattened one level with a ``<key>_`` prefix; nested lists and
        arrays (per-pass traces, forests) are dropped — records are for
        tables, full fidelity stays on the result object.
        """
        record: dict = {
            "algorithm": self.algorithm,
            "k": self.k,
            "t": self.t,
            "iterations": self.iterations,
            "epochs": self.epochs_executed(),
            "num_edges": self.num_edges,
            "phase2_added": self.phase2_added,
        }

        def scalar(value):
            if isinstance(value, (bool, int, float, str)) or value is None:
                return True
            return isinstance(value, np.generic)

        for key, value in self.extra.items():
            if isinstance(value, dict):
                for sub, sval in value.items():
                    if scalar(sval):
                        record[f"{key}_{sub}"] = sval
            elif scalar(value):
                record[key] = value
        return record
