"""Result records shared by every spanner algorithm.

All algorithms return a :class:`SpannerResult`: the chosen edge ids of the
*original* input graph plus enough instrumentation (per-iteration cluster
counts, per-epoch radii, simulated round counts when applicable) to
regenerate the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import WeightedGraph

__all__ = ["IterationStats", "SpannerResult"]


@dataclass(frozen=True)
class IterationStats:
    """Instrumentation for one Baswana–Sen-style iteration.

    Attributes
    ----------
    epoch, iteration:
        1-based indices (iteration within the epoch).
    num_clusters:
        Alive clusters *before* this iteration's sampling.
    num_sampled:
        Clusters surviving the sampling step.
    num_alive_edges:
        Unprocessed edges before the iteration.
    num_added:
        Spanner edges added during the iteration.
    sampling_probability:
        The ``p`` used.
    max_radius_bound:
        Upper bound on the weighted-stretch radius of any cluster after the
        iteration (tracked via the Lemma 5.8 recurrence, not by measuring
        trees — see DESIGN.md).
    """

    epoch: int
    iteration: int
    num_clusters: int
    num_sampled: int
    num_alive_edges: int
    num_added: int
    sampling_probability: float
    max_radius_bound: float


@dataclass
class SpannerResult:
    """Output of a spanner construction.

    Attributes
    ----------
    edge_ids:
        Sorted unique ids into the input graph's edge arrays.
    algorithm:
        Human-readable algorithm name.
    k, t:
        The stretch parameter and growth parameter used (``t`` may be None
        for algorithms without one).
    iterations:
        Logical Baswana–Sen-style iteration count actually executed (the
        quantity the paper's round bounds are about, before the ``O(1/γ)``
        MPC factor).
    stats:
        Per-iteration instrumentation.
    phase2_added:
        Edges added by the final clean-up phase.
    extra:
        Algorithm-specific extras (e.g. simulated MPC rounds).
    """

    edge_ids: np.ndarray
    algorithm: str
    k: int
    t: int | None
    iterations: int
    stats: list[IterationStats] = field(default_factory=list)
    phase2_added: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def num_edges(self) -> int:
        """Spanner size in edges."""
        return int(self.edge_ids.size)

    def subgraph(self, g: WeightedGraph) -> WeightedGraph:
        """Materialize the spanner as a :class:`WeightedGraph` over ``g``."""
        return g.subgraph_from_edge_ids(self.edge_ids)

    def epochs_executed(self) -> int:
        """Number of distinct epochs that ran."""
        return len({s.epoch for s in self.stats})

    def cluster_trajectory(self) -> list[tuple[int, int, int]]:
        """``(epoch, iteration, num_clusters)`` rows — the Lemma 4.12 / 5.12
        decay data."""
        return [(s.epoch, s.iteration, s.num_clusters) for s in self.stats]
