"""Section 6, near-linear regime: one vertex (plus incident edges) per
machine.

"The implementation of the algorithms described is straightforward when
memory per machine is Θ(n).  In this case, each node along with all of its
incident edges can be assigned to one machine … Nodes can maintain all of
these information simply by communicating with their neighbors in each
round."  — i.e. no ``O(1/γ)`` factor: every logical iteration costs
``O(1)`` rounds.

:func:`spanner_mpc_nearlinear` runs the Theorem 1.1 algorithm under this
regime's accounting: it verifies the vertex-per-machine layout fits
(maximum degree ≤ the Θ(n) machine memory), charges a small constant of
rounds per iteration plus one per contraction, and returns the same
spanner as the logical algorithm (it *is* the logical algorithm, with
different accounting — the two implementations are cross-checked in the
tests).
"""

from __future__ import annotations

import numpy as np

from ..core.general_tradeoff import general_tradeoff
from ..core.results import RoundStats, SpannerResult
from ..graphs.graph import WeightedGraph

__all__ = ["spanner_mpc_nearlinear"]

#: Rounds per logical iteration: neighbors exchange sampling flags, the
#: chosen min-edges, and new cluster labels — three message exchanges.
ROUNDS_PER_ITERATION = 3
#: One label-exchange round per contraction.
ROUNDS_PER_CONTRACTION = 1


def spanner_mpc_nearlinear(
    g: WeightedGraph,
    k: int,
    t: int | None = None,
    *,
    rng=None,
    memory_constant: float = 4.0,
) -> SpannerResult:
    """Run the general algorithm in the near-linear MPC regime.

    Parameters
    ----------
    g, k, t, rng:
        As in :func:`repro.core.general_tradeoff.general_tradeoff`.
    memory_constant:
        The constant in the ``Θ(n)`` per-machine memory; a vertex whose
        degree exceeds ``memory_constant * n`` words cannot be hosted and
        the layout check raises (cannot actually happen for simple
        graphs with ``memory_constant >= 2``, but the check documents the
        regime's requirement).

    Returns
    -------
    SpannerResult
        ``extra['rounds']`` counts ``O(1)`` per iteration — contrast with
        :func:`repro.mpc_impl.spanner_mpc.spanner_mpc`'s ``O(1/γ)``.
    """
    machine_words = memory_constant * g.n + 8
    degrees = g.degree() if g.n else np.zeros(0, dtype=np.int64)
    max_degree = int(degrees.max()) if degrees.size else 0
    # Each machine stores its vertex's adjacency: 3 words per incident edge.
    if 3 * max_degree > machine_words:
        raise ValueError(
            f"vertex of degree {max_degree} does not fit a Θ(n) machine "
            f"({machine_words:.0f} words); increase memory_constant"
        )

    res = general_tradeoff(g, k, t, rng=rng)
    contractions = len(res.extra.get("epoch_contractions", []))
    rounds = ROUNDS_PER_ITERATION * res.iterations + ROUNDS_PER_CONTRACTION * contractions
    res.algorithm = "spanner-mpc-nearlinear"
    res.round_stats = RoundStats(rounds=rounds)
    res.extra["mpc_nearlinear"] = {
        "machine_memory_words": int(machine_words),
        "num_machines": g.n,
        "max_degree": max_degree,
        "peak_machine_load": 3 * max_degree,
        "rounds": rounds,
    }
    return res
