"""Corollary 1.4: APSP approximation in near-linear-memory MPC.

The pipeline (Section 7):

1. build a spanner with ``k = log2 n`` and ``t = log2 log2 n`` under MPC
   accounting (:func:`repro.mpc_impl.spanner_mpc.spanner_mpc`) — size
   ``O(n log log n)``, stretch ``O(log^{1+o(1)} n)``, in
   ``O(t log log n / log(t+1))`` iterations each worth ``O(1/γ)`` rounds;
2. collect the spanner onto one machine — legal because the near-linear
   regime gives machines ``Õ(n)`` words and the spanner fits; costs
   ``O(ceil(size / n))`` extra rounds (all-to-one routing at full machine
   bandwidth);
3. answer all queries locally on that machine.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.sparse import csgraph

from ..core.params import apsp_parameters, stretch_bound
from ..graphs.graph import WeightedGraph
from .spanner_mpc import spanner_mpc

__all__ = ["MPCApspResult", "apsp_mpc"]


class MPCApspResult:
    """Outcome of the MPC APSP pipeline.

    Attributes
    ----------
    spanner:
        The collected spanner (what the designated machine holds).
    rounds:
        Total simulated rounds: spanner construction + collection.
    collection_rounds:
        The ``ceil(spanner_size / machine_memory-ish)`` collection charge.
    k, t:
        Parameters used.
    """

    def __init__(
        self,
        g: WeightedGraph,
        spanner: WeightedGraph,
        rounds: int,
        collection_rounds: int,
        k: int,
        t: int,
        construction_extra: dict,
    ) -> None:
        self.g = g
        self.spanner = spanner
        self.rounds = rounds
        self.collection_rounds = collection_rounds
        self.k = k
        self.t = t
        self.construction_extra = construction_extra
        self._matrix = spanner.to_scipy() if spanner.m else None

    @property
    def guaranteed_stretch(self) -> float:
        return stretch_bound(self.k, min(self.t, max(self.k - 1, 1)))

    def distances_from(self, source: int) -> np.ndarray:
        if self._matrix is None:
            d = np.full(self.g.n, np.inf)
            d[source] = 0.0
            return d
        return csgraph.dijkstra(self._matrix, directed=False, indices=source)

    def all_pairs(self) -> np.ndarray:
        if self._matrix is None:
            d = np.full((self.g.n, self.g.n), np.inf)
            np.fill_diagonal(d, 0.0)
            return d
        return csgraph.dijkstra(self._matrix, directed=False)


def apsp_mpc(
    g: WeightedGraph,
    *,
    k: int | None = None,
    t: int | None = None,
    rng=None,
    memory_constant: float = 64.0,
) -> MPCApspResult:
    """Run the Corollary 1.4 pipeline under MPC accounting.

    The near-linear regime is modeled as ``γ = 1`` (machines hold
    ``O(n)`` words) for the collection step; the spanner construction
    itself runs in the strongly sublinear regime exactly as Theorem 1.1
    requires.
    """
    dk, dt = apsp_parameters(g.n)
    k = k if k is not None else dk
    t = t if t is not None else dt

    res = spanner_mpc(g, k, t, rng=rng, memory_constant=memory_constant)
    spanner = res.subgraph(g)

    # Collection: a machine with Õ(n) words receives the whole spanner; per
    # round it can receive O(n) words, so ceil(size/n) rounds.
    machine_words = max(g.n, 1)
    collection_rounds = max(1, math.ceil(spanner.m / machine_words))
    total = res.extra["rounds"] + collection_rounds
    return MPCApspResult(
        g=g,
        spanner=spanner,
        rounds=total,
        collection_rounds=collection_rounds,
        k=k,
        t=t,
        construction_extra=res.extra,
    )
