"""Section 6: the general spanner algorithm executed on the MPC simulator.

This is the machine-level counterpart of
:func:`repro.core.general_tradeoff.general_tradeoff`.  The same logical
algorithm, but every grouping/annotation step goes through the [GSZ11]
primitives of :mod:`repro.mpc.primitives` over :class:`DistributedTable`
records, so the run produces *measured* simulated rounds and per-machine
loads that the Theorem 1.1 benches compare against
``O((1/γ) · t log k / log(t+1))``.

Tuple layout follows the paper: edge records ``((u, v), w, eid)`` annotated
with cluster labels ``(I_u, I_v)`` and sampled flags via sorted joins
(Lemma 6.1's Clustering subroutine); per-node minima via Find-Minimum; the
Merge and Contraction subroutines are sorts + relabeling joins.
"""

from __future__ import annotations

import numpy as np

from ..core.params import coerce_rng, num_epochs, sampling_probability
from ..core.results import IterationStats, MPCRunStats, RoundStats, SpannerResult
from ..graphs.graph import WeightedGraph
from ..mpc.config import MPCConfig
from ..mpc.primitives import join_lookup, sort_table
from ..mpc.simulator import DistributedTable, MPCSimulator

__all__ = ["spanner_mpc"]


def _leaders(*sorted_cols: np.ndarray) -> np.ndarray:
    n = sorted_cols[0].size
    if n == 0:
        return np.zeros(0, dtype=bool)
    lead = np.zeros(n, dtype=bool)
    lead[0] = True
    for arr in sorted_cols:
        lead[1:] |= arr[1:] != arr[:-1]
    return lead


def spanner_mpc(
    g: WeightedGraph,
    k: int,
    t: int | None = None,
    *,
    gamma: float = 0.5,
    rng=None,
    memory_constant: float = 64.0,
) -> SpannerResult:
    """Run the general tradeoff algorithm under MPC accounting.

    Parameters
    ----------
    g, k, t, rng:
        As in :func:`repro.core.general_tradeoff.general_tradeoff`.
    gamma:
        Local-memory exponent; machines hold ``O(n^γ)`` words and the
        simulator enforces it.
    memory_constant:
        The hidden constant of ``S = O(n^γ)``.  The MPC model allows any
        constant; the simulator needs one concrete enough to enforce.

    Returns
    -------
    SpannerResult
        ``extra['mpc']`` holds the simulator summary (measured rounds,
        peak machine load, message volume); ``extra['rounds']`` the
        simulated round count.

    Raises
    ------
    MPCViolation
        If any machine would exceed its local memory — i.e. the chosen
        ``memory_constant`` is too small for this input.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = coerce_rng(rng)
    if t is None:
        from ..core.general_tradeoff import default_t

        t = default_t(k)
    t_eff = min(max(t, 1), max(k - 1, 1))

    n = g.n
    config = MPCConfig(
        n=n,
        gamma=gamma,
        total_words=6 * (g.m + n) + 16,
        memory_constant=memory_constant,
    )
    sim = MPCSimulator(config)

    if k == 1 or g.m == 0:
        res = SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="spanner-mpc",
            k=k,
            t=t,
            iterations=0,
        )
        res.mpc_stats = MPCRunStats(**sim.summary())
        res.round_stats = RoundStats(rounds=0)
        return res

    # Distributed state: node table (super-node -> cluster label) and edge
    # table over current super-node ids with provenance eids.
    nodes = DistributedTable(
        sim,
        {"node": np.arange(n, dtype=np.int64), "label": np.arange(n, dtype=np.int64)},
        words_per_record=4,
    )
    edges = DistributedTable(
        sim,
        {
            "u": g.edges_u.copy(),
            "v": g.edges_v.copy(),
            "w": g.edges_w.copy(),
            "eid": np.arange(g.m, dtype=np.int64),
        },
        words_per_record=12,
    )

    l = num_epochs(k, t_eff)
    spanner_parts: list[np.ndarray] = []
    stats: list[IterationStats] = []
    iterations_run = 0

    for epoch in range(1, l + 1):
        p = sampling_probability(n, k, t_eff, epoch)
        for j in range(1, t_eff + 1):
            iterations_run += 1
            labels = nodes["label"]
            node_ids = nodes["node"]
            active_labels = labels[labels >= 0]
            cluster_ids = np.unique(active_labels)
            alive_before = len(edges)

            # --- sample clusters; broadcast flag to members (join) --------
            sampled_ids = (
                cluster_ids[rng.random(cluster_ids.size) < p]
                if cluster_ids.size
                else np.zeros(0, dtype=np.int64)
            )
            flag = np.zeros(cluster_ids.size, dtype=np.int64)
            flag[np.isin(cluster_ids, sampled_ids)] = 1
            nodes = join_lookup(
                nodes, "label", cluster_ids, flag, "sampled", default=0,
                context="sample-broadcast",
            )

            # --- annotate edges with endpoint labels + flags (Clustering) --
            edges = join_lookup(edges, "u", node_ids, labels, "lu", context="label-u")
            edges = join_lookup(edges, "v", node_ids, labels, "lv", context="label-v")
            edges = join_lookup(edges, "lu", cluster_ids, flag, "su", default=0, context="flag-u")
            edges = join_lookup(edges, "lv", cluster_ids, flag, "sv", default=0, context="flag-v")

            # --- build arcs with processing tails (local map) ---------------
            eu, ev = edges["u"], edges["v"]
            ew, eeid = edges["w"], edges["eid"]
            lu, lv = edges["lu"], edges["lv"]
            su, sv = edges["su"].astype(bool), edges["sv"].astype(bool)
            row = np.arange(len(edges), dtype=np.int64)
            tails = np.concatenate([eu, ev])
            heads_lab = np.concatenate([lv, lu])
            tail_lab = np.concatenate([lu, lv])
            tail_samp = np.concatenate([su, sv])
            aw = np.concatenate([ew, ew])
            aeid = np.concatenate([eeid, eeid])
            arow = np.concatenate([row, row])
            proc = (tail_lab >= 0) & ~tail_samp
            arcs = DistributedTable(
                sim,
                {
                    "tail": tails[proc],
                    "hc": heads_lab[proc],
                    "w": aw[proc],
                    "eid": aeid[proc],
                    "row": arow[proc],
                },
                words_per_record=8,
            )

            dead_rows: np.ndarray
            join_pairs_node = np.zeros(0, dtype=np.int64)
            join_pairs_label = np.zeros(0, dtype=np.int64)
            num_added = 0
            if len(arcs):
                # --- group minima per (tail, head-cluster): Find-Minimum ----
                arcs = sort_table(arcs, ["tail", "hc", "w", "eid"], context="group-min")
                a_tail, a_hc = arcs["tail"], arcs["hc"]
                lead = _leaders(a_tail, a_hc)
                lidx = np.flatnonzero(lead)
                gt, gc = a_tail[lidx], a_hc[lidx]
                gw, geid = arcs["w"][lidx], arcs["eid"][lidx]
                g_samp = np.isin(gc, sampled_ids)

                groups = DistributedTable(
                    sim,
                    {
                        "tail": gt,
                        "hc": gc,
                        "w": gw,
                        "eid": geid,
                        "unsampled": (~g_samp).astype(np.int64),
                        "gidx": np.arange(gt.size, dtype=np.int64),
                    },
                    words_per_record=8,
                )
                # --- per-tail closest sampled cluster: Find-Minimum ---------
                groups = sort_table(
                    groups, ["tail", "unsampled", "w", "eid"], context="choose-join"
                )
                b_tail = groups["tail"]
                first = _leaders(b_tail)
                f = {c: groups[c][first] for c in ("tail", "hc", "w", "eid", "unsampled", "gidx")}
                joiner = f["unsampled"] == 0

                join_pairs_node = f["tail"][joiner]
                join_pairs_label = f["hc"][joiner]
                join_w = np.full(n, np.inf)
                join_w[join_pairs_node] = f["w"][joiner]

                # --- decide group actions (broadcast join weight: join) -----
                sim.charge("segment_broadcast", records_moved=int(gt.size))
                g_is_join = np.zeros(gt.size, dtype=bool)
                g_is_join[f["gidx"][joiner]] = True
                g_connect = (~g_is_join) & (gw < join_w[gt])
                g_discard = g_connect | g_is_join
                added = np.concatenate([geid[g_connect], f["eid"][joiner]])
                spanner_parts.append(added)
                num_added = int(added.size)

                # --- propagate discards to edge rows (join) -----------------
                group_of_arc = np.cumsum(lead) - 1
                dead_rows = np.unique(arcs["row"][g_discard[group_of_arc]])
                sim.charge("join", records_moved=int(dead_rows.size))
            else:
                dead_rows = np.zeros(0, dtype=np.int64)

            # --- update node labels (Merge subroutine: join) ----------------
            # Every node in an unsampled cluster retires unless it joined.
            new_labels = labels.copy()
            is_active = labels >= 0
            sampled_node = nodes["sampled"].astype(bool) & is_active
            retire = is_active & ~sampled_node
            new_labels[node_ids[retire]] = -1
            new_labels[join_pairs_node] = join_pairs_label
            nodes = DistributedTable(
                sim,
                {"node": node_ids, "label": new_labels},
                words_per_record=4,
            )
            sim.charge("join", records_moved=int(joiner.sum()) if len(arcs) else 0)

            # --- drop dead + intra-cluster edges (relabel joins) -------------
            keep = np.ones(len(edges), dtype=bool)
            keep[dead_rows] = False
            edges = edges.select(keep, context="discard")
            edges = join_lookup(edges, "u", node_ids, new_labels, "lu", context="relabel-u")
            edges = join_lookup(edges, "v", node_ids, new_labels, "lv", context="relabel-v")
            intra = edges["lu"] == edges["lv"]
            edges = edges.select(~intra, context="intra")

            live = np.unique(new_labels[new_labels >= 0])
            stats.append(
                IterationStats(
                    epoch=epoch,
                    iteration=j,
                    num_clusters=int(cluster_ids.size),
                    num_sampled=int(sampled_ids.size),
                    num_alive_edges=alive_before,
                    num_added=num_added,
                    sampling_probability=p,
                    max_radius_bound=0.0,
                )
            )

        # --- Step C: Contraction subroutine ---------------------------------
        labels = nodes["label"]
        node_ids = nodes["node"]
        clustered = labels >= 0
        cur = len(nodes)
        seeds = np.unique(labels[clustered]) if clustered.any() else np.zeros(0, np.int64)
        seed_to_new = np.full(cur, -1, dtype=np.int64)
        seed_to_new[seeds] = np.arange(seeds.size)
        new_id = np.empty(cur, dtype=np.int64)
        new_id[clustered] = seed_to_new[labels[clustered]]
        retired = np.flatnonzero(~clustered)
        new_id[retired] = seeds.size + np.arange(retired.size)

        edges = join_lookup(edges, "u", node_ids, new_id[node_ids], "cu", context="contract-u")
        edges = join_lookup(edges, "v", node_ids, new_id[node_ids], "cv", context="contract-v")
        cu, cv = edges["cu"], edges["cv"]
        lo = np.minimum(cu, cv)
        hi = np.maximum(cu, cv)
        edges = edges.with_columns(u=lo, v=hi)
        edges = sort_table(edges, ["u", "v", "w", "eid"], context="contract-dedup")
        lead = _leaders(edges["u"], edges["v"])
        edges = edges.select(lead, context="contract-keep-min")
        # New super-node table (identity labels).
        num_new = int(seeds.size + retired.size)
        nodes = DistributedTable(
            sim,
            {
                "node": np.arange(num_new, dtype=np.int64),
                "label": np.arange(num_new, dtype=np.int64),
            },
            words_per_record=4,
        )
        if len(edges) == 0:
            break

    # --- Phase 2: remaining (already min-per-pair) edges ---------------------
    extra = np.unique(edges["eid"]) if len(edges) else np.zeros(0, dtype=np.int64)
    spanner_parts.append(extra)
    eids = (
        np.unique(np.concatenate(spanner_parts))
        if spanner_parts
        else np.zeros(0, dtype=np.int64)
    )
    res = SpannerResult(
        edge_ids=eids,
        algorithm="spanner-mpc",
        k=k,
        t=t,
        iterations=iterations_run,
        stats=stats,
        phase2_added=int(extra.size),
    )
    res.mpc_stats = MPCRunStats(**sim.summary())
    res.round_stats = RoundStats(rounds=sim.rounds)
    return res
