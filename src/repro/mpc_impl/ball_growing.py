"""Appendix B.2.1: capped ball growing by graph exponentiation under MPC
accounting.

Each doubling step turns radius-``2^i`` balls into radius-``2^(i+1)`` balls
by having every vertex request ``B_i(w)`` from each ``w ∈ B_i(v)``.  Two
subtleties the paper calls out, both reproduced here:

* **capping** — balls stop growing once they hold ``Θ(n^{γ/2})`` vertices
  (the vertex then counts as *dense*), so each ball always fits in a
  machine group;
* **request explosion** — a popular vertex (the star center of the
  paper's example) can receive far more than ``n^{γ/2}`` requests; the
  fix is to serve requests through a ``Θ(n^{γ/2})``-ary replication tree,
  which costs ``O(1/γ)`` rounds and ``O(n^{1+γ})`` total words.  The
  simulator charges exactly that: per step, one sort to group requests,
  one broadcast down the replication trees, and the measured total
  message volume is validated against the ``O(n^{1+γ})`` budget.

Vectorization: balls live in one flat ``(indptr, members)`` CSR instead of
a list of per-vertex arrays, and a doubling step is the same segment-op
vocabulary as the growth engine — one repeat-gather expands every
requested ball, one lexsort groups the candidates per (owner, vertex),
and segment counting reproduces the scalar prefix-union capping exactly
(merging balls in ball order and stopping at the first prefix whose union
exceeds the cap).  :func:`grow_balls_mpc_reference` preserves the
pre-vectorization per-vertex ``np.union1d`` loop verbatim; the
equivalence tests certify identical balls, flags, rounds, and words.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.graph import WeightedGraph
from ..mpc.config import MPCConfig
from ..mpc.simulator import MPCSimulator

__all__ = ["BallGrowingResult", "grow_balls_mpc", "grow_balls_mpc_reference"]


class BallGrowingResult:
    """Balls plus MPC accounting.

    Attributes
    ----------
    balls:
        Per vertex, the sorted array of vertices in its (possibly capped)
        ball.
    complete:
        Per vertex, True if the ball reached the hop radius without
        hitting the cap (the vertex is *sparse*).
    rounds:
        Simulated rounds charged (``O(log radius)`` doubling steps, each
        ``O(1/γ)``).
    total_words:
        Total communication volume (must stay ``O(n^{1+γ})``).
    """

    def __init__(self, balls, complete, rounds, total_words, cap, config):
        self.balls = balls
        self.complete = complete
        self.rounds = rounds
        self.total_words = total_words
        self.cap = cap
        self.config = config

    def memory_budget(self, constant: float = 8.0) -> float:
        """The ``O(m + n^{1+γ})`` words Appendix B allows."""
        n = self.config.n
        return constant * (n ** (1.0 + self.config.gamma) + n)


def _truncate_keeping(ball: np.ndarray, center: int, cap: int) -> np.ndarray:
    """Cap a sorted vertex set without ever dropping its own center
    (``np.union1d`` sorts by id, and the center may sort past the cap)."""
    if ball.size <= cap:
        return ball
    out = ball[:cap]
    if center not in out:
        out = np.sort(np.append(out[:-1], center))
    return out


def _merge_capped(a: np.ndarray, b: np.ndarray, center: int, cap: int) -> np.ndarray:
    return _truncate_keeping(np.union1d(a, b), center, cap)


def _segment_ranks(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """For a group-contiguous key array: (segment starts, lengths, ranks)."""
    seg = np.ones(keys.size, dtype=bool)
    seg[1:] = keys[1:] != keys[:-1]
    starts = np.flatnonzero(seg)
    lengths = np.diff(np.append(starts, keys.size))
    ranks = np.arange(keys.size) - np.repeat(starts, lengths)
    return starts, lengths, ranks


def _truncate_balls_flat(
    owner: np.ndarray, vtx: np.ndarray, cap: int, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-owner ``_truncate_keeping`` over (owner, vtx)-sorted flat rows.

    Keeps each owner's ``cap`` smallest vertices, force-including the
    owner itself (dropping the ``cap``-th smallest to make room), exactly
    like the scalar helper.  Returns the filtered ``(owner, vtx)`` rows.
    """
    if owner.size == 0:
        return owner, vtx
    starts, lengths, ranks = _segment_ranks(owner)
    is_center = vtx == owner
    # Per owner: the center's rank (every ball contains its center).
    center_rank = np.zeros(n, dtype=np.int64)
    center_rank[owner[is_center]] = ranks[is_center]
    over = lengths > cap
    over_owner = np.zeros(n, dtype=bool)
    over_owner[owner[starts[over]]] = True
    center_out = over_owner & (center_rank >= cap)
    keep = ranks < cap
    row_center_out = center_out[owner]
    keep[row_center_out & (ranks == cap - 1)] = False
    keep[row_center_out & is_center] = True
    return owner[keep], vtx[keep]


def grow_balls_mpc(
    g: WeightedGraph,
    radius: int,
    *,
    gamma: float = 0.5,
    cap: int | None = None,
    memory_constant: float = 64.0,
) -> BallGrowingResult:
    """Grow capped ``radius``-hop balls for every vertex by doubling.

    Parameters
    ----------
    g:
        Input graph (hop balls: weights ignored).
    radius:
        Target hop radius; ``ceil(log2 radius)`` doubling steps.
    gamma:
        Local-memory exponent; the default cap is ``ceil(n^{γ/2})``.
    cap:
        Override the ball-size cap.

    Returns
    -------
    BallGrowingResult

    Notes
    -----
    The returned ball of a *capped* vertex is a ``Θ(cap)``-size connected
    subset of the true ball, grown in BFS-ish doubling order — exactly the
    "terminate the exploration as soon as the size exceeds ``a·n^{γ/2}``"
    behaviour of Appendix B.2.1.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    n = g.n
    if cap is None:
        cap = max(4, int(math.ceil(n ** (gamma / 2.0))))
    config = MPCConfig(
        n=max(n, 1), gamma=gamma, total_words=4 * (g.m + n) + 16,
        memory_constant=memory_constant,
    )
    sim = MPCSimulator(config)

    # B_1(v) = {v} ∪ N(v), capped: one (owner, vtx) sort of the CSR rows
    # plus the centers, then the flat per-owner truncation.
    csr = g.csr
    deg = np.diff(csr.indptr)
    owner = np.concatenate([np.repeat(np.arange(n, dtype=np.int64), deg),
                            np.arange(n, dtype=np.int64)])
    vtx = np.concatenate([csr.indices.astype(np.int64, copy=False),
                          np.arange(n, dtype=np.int64)])
    order = np.lexsort((vtx, owner))
    owner, vtx = owner[order], vtx[order]
    capped = (deg + 1) > cap
    owner, vtx = _truncate_balls_flat(owner, vtx, cap, n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(owner, minlength=n), out=indptr[1:])
    members = vtx
    total_words = int(members.size)

    steps = max(0, math.ceil(math.log2(max(radius, 1)))) if radius > 1 else 0
    j_star = np.empty(n, dtype=np.int64)  # per-step prefix-union scratch
    for _ in range(steps):
        sizes = indptr[1:] - indptr[:-1]
        # Requests: v asks each w in B(v) for B(w).  Count per-target
        # request loads (the star-center explosion) and serve them through
        # replication trees: one sort + one broadcast, O(1/γ) rounds each.
        req_words = int(sizes[members].sum())
        total_words += req_words
        sim.charge("sort", records_moved=int(members.size))
        sim.charge("segment_broadcast", records_moved=req_words)

        act = np.flatnonzero(~capped)
        if act.size == 0:
            continue
        # --- Expand: for active v and the j-th member w of B(v), every
        # vertex of B(w) becomes a candidate tagged (v, j). -----------------
        a_start = indptr[act]
        a_cnt = sizes[act]
        a_total = int(a_cnt.sum())
        rep = np.repeat(np.arange(act.size), a_cnt)
        within = np.arange(a_total) - np.repeat(np.cumsum(a_cnt) - a_cnt, a_cnt)
        w = members[a_start[rep] + within]  # requested ball owners, in ball order
        w_rank = within  # merge order = position of w in B(v)
        w_owner = act[rep]
        w_cnt = sizes[w]
        c_total = int(w_cnt.sum())
        rep2 = np.repeat(np.arange(w.size), w_cnt)
        within2 = np.arange(c_total) - np.repeat(np.cumsum(w_cnt) - w_cnt, w_cnt)
        cand_vtx = members[indptr[w][rep2] + within2]
        cand_owner = w_owner[rep2]
        cand_rank = w_rank[rep2]
        # The base set U_0 = B(v) itself (the scalar accumulator starts
        # there before any merge): rank -1.
        cand_owner = np.concatenate([w_owner, cand_owner])
        cand_vtx = np.concatenate([w, cand_vtx])
        cand_rank = np.concatenate([np.full(w.size, -1, dtype=np.int64), cand_rank])

        # --- Distinct (owner, vtx) with the earliest merge rank ------------
        order = np.lexsort((cand_rank, cand_vtx, cand_owner))
        o_s, v_s, r_s = cand_owner[order], cand_vtx[order], cand_rank[order]
        lead = np.ones(o_s.size, dtype=bool)
        lead[1:] = (o_s[1:] != o_s[:-1]) | (v_s[1:] != v_s[:-1])
        o_u, v_u, r_u = o_s[lead], v_s[lead], r_s[lead]  # sorted by (owner, vtx)

        # --- Prefix-union capping: the scalar loop merges B(w) in ball
        # order and stops at the first prefix whose union exceeds the cap;
        # the surviving set is then the cap smallest of that prefix union
        # (center kept).  j* falls out of one (owner, rank) sort. ----------
        rorder = np.lexsort((r_u, o_u))
        o_r = o_u[rorder]
        _, _, cum = _segment_ranks(o_r)
        exceeded = cum + 1 > cap  # union size after this member arrives
        j_star.fill(np.iinfo(np.int64).max)
        exc_idx = np.flatnonzero(exceeded)
        if exc_idx.size:
            # First exceeded position per owner (rorder is owner-grouped).
            eo = o_r[exc_idx]
            first = np.ones(eo.size, dtype=bool)
            first[1:] = eo[1:] != eo[:-1]
            fo = exc_idx[first]
            j_star[o_r[fo]] = r_u[rorder][fo]
            capped[o_r[fo]] = True
        keep = r_u <= j_star[o_u]
        o_k, v_k = o_u[keep], v_u[keep]  # still (owner, vtx)-sorted
        o_k, v_k = _truncate_balls_flat(o_k, v_k, cap, n)

        # --- Reassemble: frozen balls of previously capped vertices plus
        # the grown balls of the active ones. ------------------------------
        frozen = np.ones(n, dtype=bool)
        frozen[act] = False
        owner_rows = np.repeat(np.arange(n), sizes)  # one O(members) gather
        frozen_rows = frozen[owner_rows]
        f_owner = owner_rows[frozen_rows]
        f_vtx = members[frozen_rows]
        owner_all = np.concatenate([f_owner, o_k])
        vtx_all = np.concatenate([f_vtx, v_k])
        order = np.lexsort((vtx_all, owner_all))
        owner_all, vtx_all = owner_all[order], vtx_all[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(owner_all, minlength=n), out=indptr[1:])
        members = vtx_all

    balls = [members[indptr[i] : indptr[i + 1]] for i in range(n)]
    complete = ~capped
    return BallGrowingResult(
        balls=balls,
        complete=complete,
        rounds=sim.rounds,
        total_words=total_words,
        cap=cap,
        config=config,
    )


def grow_balls_mpc_reference(
    g: WeightedGraph,
    radius: int,
    *,
    gamma: float = 0.5,
    cap: int | None = None,
    memory_constant: float = 64.0,
) -> BallGrowingResult:
    """Pre-vectorization :func:`grow_balls_mpc` (per-vertex ``np.union1d``
    merge loops), frozen as the equivalence reference.  Do not optimize."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    n = g.n
    if cap is None:
        cap = max(4, int(math.ceil(n ** (gamma / 2.0))))
    config = MPCConfig(
        n=max(n, 1), gamma=gamma, total_words=4 * (g.m + n) + 16,
        memory_constant=memory_constant,
    )
    sim = MPCSimulator(config)

    csr = g.csr
    balls: list[np.ndarray] = []
    capped = np.zeros(n, dtype=bool)
    for v in range(n):
        nbrs = csr.indices[csr.indptr[v] : csr.indptr[v + 1]]
        b = np.union1d(np.array([v], dtype=np.int64), nbrs)
        if b.size > cap:
            b = _truncate_keeping(b, v, cap)
            capped[v] = True
        balls.append(b)
    total_words = int(sum(b.size for b in balls))

    steps = max(0, math.ceil(math.log2(max(radius, 1)))) if radius > 1 else 0
    for _ in range(steps):
        req_targets = np.concatenate([b for b in balls]) if balls else np.zeros(0, np.int64)
        req_words = int(sum(balls[int(w)].size for w in req_targets))
        total_words += req_words
        sim.charge("sort", records_moved=int(req_targets.size))
        sim.charge("segment_broadcast", records_moved=req_words)

        new_balls = []
        for v in range(n):
            if capped[v]:
                new_balls.append(balls[v])
                continue
            acc = balls[v]
            for w in balls[v]:
                acc = _merge_capped(acc, balls[int(w)], v, cap + 1)
                if acc.size > cap:
                    break
            if acc.size > cap:
                acc = _truncate_keeping(acc, v, cap)
                capped[v] = True
            new_balls.append(acc)
        balls = new_balls

    complete = ~capped
    return BallGrowingResult(
        balls=balls,
        complete=complete,
        rounds=sim.rounds,
        total_words=total_words,
        cap=cap,
        config=config,
    )
