"""Appendix B.2.1: capped ball growing by graph exponentiation under MPC
accounting.

Each doubling step turns radius-``2^i`` balls into radius-``2^(i+1)`` balls
by having every vertex request ``B_i(w)`` from each ``w ∈ B_i(v)``.  Two
subtleties the paper calls out, both reproduced here:

* **capping** — balls stop growing once they hold ``Θ(n^{γ/2})`` vertices
  (the vertex then counts as *dense*), so each ball always fits in a
  machine group;
* **request explosion** — a popular vertex (the star center of the
  paper's example) can receive far more than ``n^{γ/2}`` requests; the
  fix is to serve requests through a ``Θ(n^{γ/2})``-ary replication tree,
  which costs ``O(1/γ)`` rounds and ``O(n^{1+γ})`` total words.  The
  simulator charges exactly that: per step, one sort to group requests,
  one broadcast down the replication trees, and the measured total
  message volume is validated against the ``O(n^{1+γ})`` budget.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.graph import WeightedGraph
from ..mpc.config import MPCConfig
from ..mpc.simulator import MPCSimulator

__all__ = ["BallGrowingResult", "grow_balls_mpc"]


class BallGrowingResult:
    """Balls plus MPC accounting.

    Attributes
    ----------
    balls:
        Per vertex, the sorted array of vertices in its (possibly capped)
        ball.
    complete:
        Per vertex, True if the ball reached the hop radius without
        hitting the cap (the vertex is *sparse*).
    rounds:
        Simulated rounds charged (``O(log radius)`` doubling steps, each
        ``O(1/γ)``).
    total_words:
        Total communication volume (must stay ``O(n^{1+γ})``).
    """

    def __init__(self, balls, complete, rounds, total_words, cap, config):
        self.balls = balls
        self.complete = complete
        self.rounds = rounds
        self.total_words = total_words
        self.cap = cap
        self.config = config

    def memory_budget(self, constant: float = 8.0) -> float:
        """The ``O(m + n^{1+γ})`` words Appendix B allows."""
        n = self.config.n
        return constant * (n ** (1.0 + self.config.gamma) + n)


def _truncate_keeping(ball: np.ndarray, center: int, cap: int) -> np.ndarray:
    """Cap a sorted vertex set without ever dropping its own center
    (``np.union1d`` sorts by id, and the center may sort past the cap)."""
    if ball.size <= cap:
        return ball
    out = ball[:cap]
    if center not in out:
        out = np.sort(np.append(out[:-1], center))
    return out


def _merge_capped(a: np.ndarray, b: np.ndarray, center: int, cap: int) -> np.ndarray:
    return _truncate_keeping(np.union1d(a, b), center, cap)


def grow_balls_mpc(
    g: WeightedGraph,
    radius: int,
    *,
    gamma: float = 0.5,
    cap: int | None = None,
    memory_constant: float = 64.0,
) -> BallGrowingResult:
    """Grow capped ``radius``-hop balls for every vertex by doubling.

    Parameters
    ----------
    g:
        Input graph (hop balls: weights ignored).
    radius:
        Target hop radius; ``ceil(log2 radius)`` doubling steps.
    gamma:
        Local-memory exponent; the default cap is ``ceil(n^{γ/2})``.
    cap:
        Override the ball-size cap.

    Returns
    -------
    BallGrowingResult

    Notes
    -----
    The returned ball of a *capped* vertex is a ``Θ(cap)``-size connected
    subset of the true ball, grown in BFS-ish doubling order — exactly the
    "terminate the exploration as soon as the size exceeds ``a·n^{γ/2}``"
    behaviour of Appendix B.2.1.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    n = g.n
    if cap is None:
        cap = max(4, int(math.ceil(n ** (gamma / 2.0))))
    config = MPCConfig(
        n=max(n, 1), gamma=gamma, total_words=4 * (g.m + n) + 16,
        memory_constant=memory_constant,
    )
    sim = MPCSimulator(config)

    # B_1(v) = {v} ∪ N(v), capped.
    csr = g.csr
    balls: list[np.ndarray] = []
    capped = np.zeros(n, dtype=bool)
    for v in range(n):
        nbrs = csr.indices[csr.indptr[v] : csr.indptr[v + 1]]
        b = np.union1d(np.array([v], dtype=np.int64), nbrs)
        if b.size > cap:
            b = _truncate_keeping(b, v, cap)
            capped[v] = True
        balls.append(b)
    total_words = int(sum(b.size for b in balls))

    steps = max(0, math.ceil(math.log2(max(radius, 1)))) if radius > 1 else 0
    for _ in range(steps):
        # Requests: v asks each w in B(v) for B(w).  Count per-target
        # request loads (the star-center explosion) and serve them through
        # replication trees: one sort + one broadcast, O(1/γ) rounds each.
        req_targets = np.concatenate([b for b in balls]) if balls else np.zeros(0, np.int64)
        req_words = int(sum(balls[int(w)].size for w in req_targets))
        total_words += req_words
        sim.charge("sort", records_moved=int(req_targets.size))
        sim.charge("segment_broadcast", records_moved=req_words)

        new_balls = []
        for v in range(n):
            if capped[v]:
                new_balls.append(balls[v])
                continue
            acc = balls[v]
            for w in balls[v]:
                acc = _merge_capped(acc, balls[int(w)], v, cap + 1)
                if acc.size > cap:
                    break
            if acc.size > cap:
                acc = _truncate_keeping(acc, v, cap)
                capped[v] = True
            new_balls.append(acc)
        balls = new_balls

    complete = ~capped
    return BallGrowingResult(
        balls=balls,
        complete=complete,
        rounds=sim.rounds,
        total_words=total_words,
        cap=cap,
        config=config,
    )
