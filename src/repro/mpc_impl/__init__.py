"""Machine-level MPC implementations (Sections 6, 7, Appendix B.2.1)."""

from .apsp import MPCApspResult, apsp_mpc
from .ball_growing import BallGrowingResult, grow_balls_mpc, grow_balls_mpc_reference
from .nearlinear import spanner_mpc_nearlinear
from .spanner_mpc import spanner_mpc

__all__ = [
    "spanner_mpc",
    "spanner_mpc_nearlinear",
    "apsp_mpc",
    "MPCApspResult",
    "grow_balls_mpc",
    "grow_balls_mpc_reference",
    "BallGrowingResult",
]
