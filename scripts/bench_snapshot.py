#!/usr/bin/env python
"""Dump distance-layer benchmark timings to ``BENCH_distance_layer.json``.

This is the trajectory-tracking entry point: each run overwrites the JSON
snapshot at the repo root, so the perf numbers future PRs must defend are
always one command away::

    python scripts/bench_snapshot.py            # full acceptance-scale run
    python scripts/bench_snapshot.py --smoke    # tiny-n sanity run

No PYTHONPATH fiddling needed — the script wires up ``src`` and
``benchmarks`` itself.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

from bench_distance_layer import format_table, run_distance_layer_bench  # noqa: E402


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny-n smoke run")
    ap.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_distance_layer.json"),
        help="output JSON path (default: BENCH_distance_layer.json at repo root)",
    )
    args = ap.parse_args()

    record = run_distance_layer_bench(smoke=args.smoke)
    print(format_table(record))
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if not args.smoke and record["sketch_preprocess"]["speedup"] < 5.0:
        print("WARNING: sketch preprocessing speedup fell below the 5x gate",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
