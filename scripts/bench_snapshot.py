#!/usr/bin/env python
"""Dump benchmark timings to the ``BENCH_*.json`` trajectory snapshots.

This is the trajectory-tracking entry point: each run overwrites the JSON
snapshot(s) at the repo root, so the perf numbers future PRs must defend are
always one command away::

    python scripts/bench_snapshot.py                    # distance-layer suite
    python scripts/bench_snapshot.py --suite runner     # experiment-runner suite
    python scripts/bench_snapshot.py --suite all        # everything
    python scripts/bench_snapshot.py --smoke            # tiny-n sanity run

Suites and their artifacts:

* ``distance`` -> ``BENCH_distance_layer.json`` (sketch/pairwise speedups)
* ``runner``   -> ``BENCH_runner.json`` (sweep parallel speedup + resume)

No PYTHONPATH fiddling needed — the script wires up ``src`` and
``benchmarks`` itself.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))


def _write(record: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


def _run_distance(args) -> int:
    from bench_distance_layer import format_table, run_distance_layer_bench

    record = run_distance_layer_bench(smoke=args.smoke)
    print(format_table(record))
    _write(record, args.out or os.path.join(REPO_ROOT, "BENCH_distance_layer.json"))

    if not args.smoke and record["sketch_preprocess"]["speedup"] < 5.0:
        print("WARNING: sketch preprocessing speedup fell below the 5x gate",
              file=sys.stderr)
        return 1
    return 0


def _run_runner(args) -> int:
    from bench_runner import format_table, run_runner_bench, speedup_gate

    record = run_runner_bench(smoke=args.smoke)
    print(format_table(record))
    _write(record, args.out or os.path.join(REPO_ROOT, "BENCH_runner.json"))

    if record["resume"]["executed"] != 0:
        print("WARNING: sweep resume re-executed trials", file=sys.stderr)
        return 1
    if not args.smoke:
        ok, reason = speedup_gate(record)
        print(f"speedup gate: {reason}", file=sys.stderr if not ok else sys.stdout)
        if not ok:
            return 1
    return 0


SUITES = {"distance": _run_distance, "runner": _run_runner}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny-n smoke run")
    ap.add_argument(
        "--suite",
        choices=[*SUITES, "all"],
        default="distance",
        help="which benchmark suite to run (default: distance)",
    )
    ap.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_<suite>.json at repo root; "
        "only valid with a single suite)",
    )
    args = ap.parse_args()

    names = list(SUITES) if args.suite == "all" else [args.suite]
    if args.out and len(names) > 1:
        ap.error("--out requires a single --suite")
    rc = 0
    for name in names:
        rc |= SUITES[name](args)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
