#!/usr/bin/env python
"""Dump benchmark timings to the ``BENCH_*.json`` trajectory snapshots.

This is the trajectory-tracking entry point: each run overwrites the JSON
snapshot(s) at the repo root, so the perf numbers future PRs must defend are
always one command away::

    python scripts/bench_snapshot.py                    # distance-layer suite
    python scripts/bench_snapshot.py --suite runner     # experiment-runner suite
    python scripts/bench_snapshot.py --suite suite      # cross-algorithm suite
    python scripts/bench_snapshot.py --suite full       # all four + trajectory diff
    python scripts/bench_snapshot.py --smoke            # tiny-n sanity run

Suites and their artifacts:

* ``distance`` -> ``BENCH_distance_layer.json`` (sketch/pairwise speedups)
* ``runner``   -> ``BENCH_runner.json`` (sweep parallel speedup + resume)
* ``suite``    -> ``BENCH_suite.json`` (all registered algorithms +
  hot-loop before/after harness; see ``repro bench``)
* ``service``  -> ``BENCH_service.json`` (query-throughput workloads: the
  LRU-vs-clear() thrash duel, batched q/s, sharded + persistence
  bit-identity; see ``repro query`` and benchmarks/bench_service.py)
* ``scale``    -> ``BENCH_scale.json`` (memory scaling of the zero-copy
  serving path: peak RSS per phase, the O(graph + eps) worker-memory
  gate vs the legacy per-worker-copy recipe, mmap vs eager loads, plus
  the budget-gated n=10^6 cell — build+query under a declared
  ``REPRO_MEM_BUDGET`` with a per-edge throughput gate; see
  benchmarks/bench_scale.py)
* ``server``   -> ``BENCH_server.json`` (open-loop load on the concurrent
  micro-batching socket server: offered-rate sweep with tail latencies,
  the >= 5x micro-vs-naive duel, reply bit-identity, graceful-drain shm
  hygiene; see ``repro serve --socket`` and benchmarks/bench_server.py)
* ``provider`` -> ``BENCH_provider.json`` (the accuracy/latency Pareto
  frontier of the exact/oracle/sketch/tiered backends plus the auto
  planner on zipf + uniform workloads: stretch-bound, throughput, and
  sketch-tier identity gates; see ``repro query --backend`` and
  benchmarks/bench_provider.py)

``--suite full`` regenerates every snapshot in one invocation and prints
a compact trajectory diff against the previously committed files.

No PYTHONPATH fiddling needed — the script wires up ``src`` and
``benchmarks`` itself.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

OUT_PATHS = {
    "distance": "BENCH_distance_layer.json",
    "runner": "BENCH_runner.json",
    "suite": "BENCH_suite.json",
    "service": "BENCH_service.json",
    "scale": "BENCH_scale.json",
    "server": "BENCH_server.json",
    "provider": "BENCH_provider.json",
}


def _write(record: dict, path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


def _load_existing(path: str) -> dict | None:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def _run_distance(args, out_path: str) -> tuple[int, dict]:
    from bench_distance_layer import format_table, run_distance_layer_bench

    record = run_distance_layer_bench(smoke=args.smoke)
    print(format_table(record))
    _write(record, out_path)

    if not args.smoke and record["sketch_preprocess"]["speedup"] < 5.0:
        print("WARNING: sketch preprocessing speedup fell below the 5x gate",
              file=sys.stderr)
        return 1, record
    return 0, record


def _run_runner(args, out_path: str) -> tuple[int, dict]:
    from bench_runner import format_table, run_runner_bench, speedup_gate

    record = run_runner_bench(smoke=args.smoke)
    print(format_table(record))
    _write(record, out_path)

    rc = 0
    if record["resume"]["executed"] != 0:
        print("WARNING: sweep resume re-executed trials", file=sys.stderr)
        rc = 1
    if not args.smoke:
        ok, reason = speedup_gate(record)
        print(f"speedup gate: {reason}", file=sys.stderr if not ok else sys.stdout)
        if not ok:
            rc = 1
    return rc, record


def _run_suite(args, out_path: str) -> tuple[int, dict]:
    from repro.bench import format_table, hot_loop_gates, run_suite

    record = run_suite(smoke=args.smoke)
    print(format_table(record))
    _write(record, out_path)

    ok, reasons = hot_loop_gates(record)
    for reason in reasons:
        print(f"hot-loop gate: {reason}", file=sys.stdout if ok else sys.stderr)
    return (0 if ok else 1), record


def _run_service(args, out_path: str) -> tuple[int, dict]:
    from bench_service import format_table, identity_gate, run_service_bench, thrash_gate

    record = run_service_bench(smoke=args.smoke)
    print(format_table(record))
    _write(record, out_path)

    rc = 0
    ok, reason = thrash_gate(record)
    print(f"thrash gate: {reason}", file=sys.stdout if ok else sys.stderr)
    if not ok:
        rc = 1
    ok, reasons = identity_gate(record)
    for reason in reasons:
        print(f"identity gate: {reason}", file=sys.stdout if ok else sys.stderr)
    if not ok:
        rc = 1
    return rc, record


def _run_scale(args, out_path: str) -> tuple[int, dict]:
    from bench_scale import (
        budget_gate,
        format_table,
        identity_gate,
        run_scale_bench,
        scale_gate,
        throughput_gate,
    )

    record = run_scale_bench(smoke=args.smoke)
    print(format_table(record))
    _write(record, out_path)

    rc = 0
    for gate in (scale_gate, identity_gate, budget_gate, throughput_gate):
        ok, reasons = gate(record)
        for reason in reasons:
            print(f"{gate.__name__}: {reason}", file=sys.stdout if ok else sys.stderr)
        if not ok:
            rc = 1
    return rc, record


def _run_server(args, out_path: str) -> tuple[int, dict]:
    from bench_server import (
        drain_gate,
        format_table,
        identity_gate,
        run_server_bench,
        speedup_gate,
    )

    record = run_server_bench(smoke=args.smoke)
    print(format_table(record))
    _write(record, out_path)

    rc = 0
    ok, reason = speedup_gate(record)
    print(f"speedup gate: {reason}", file=sys.stdout if ok else sys.stderr)
    if not ok:
        rc = 1
    for gate in (identity_gate, drain_gate):
        ok, reasons = gate(record)
        for reason in reasons:
            print(f"{gate.__name__}: {reason}", file=sys.stdout if ok else sys.stderr)
        if not ok:
            rc = 1
    return rc, record


def _run_provider(args, out_path: str) -> tuple[int, dict]:
    from bench_provider import (
        format_table,
        identity_gate,
        run_provider_bench,
        stretch_gate,
        throughput_gate,
    )

    record = run_provider_bench(smoke=args.smoke)
    print(format_table(record))
    _write(record, out_path)

    rc = 0
    for gate in (stretch_gate, throughput_gate, identity_gate):
        ok, reasons = gate(record)
        for reason in reasons:
            print(f"{gate.__name__}: {reason}", file=sys.stdout if ok else sys.stderr)
        if not ok:
            rc = 1
    return rc, record


SUITES = {
    "distance": _run_distance,
    "runner": _run_runner,
    "suite": _run_suite,
    "service": _run_service,
    "scale": _run_scale,
    "server": _run_server,
    "provider": _run_provider,
}


def _fmt(value, unit: str = "") -> str:
    if value is None:
        return "-"
    return f"{value}{unit}"


def _trajectory_diff(name: str, old: dict | None, new: dict) -> list[str]:
    """Compact old -> new lines for a suite's headline metrics."""
    lines: list[str] = []
    if name == "distance":
        o = (old or {}).get("sketch_preprocess", {}).get("speedup")
        n = new.get("sketch_preprocess", {}).get("speedup")
        lines.append(f"  distance sketch_preprocess.speedup: {_fmt(o, 'x')} -> {_fmt(n, 'x')}")
    elif name == "runner":
        o = (old or {}).get("speedup")
        n = new.get("speedup")
        oe = (old or {}).get("resume", {}).get("executed")
        ne = new.get("resume", {}).get("executed")
        lines.append(
            f"  runner jobs-speedup: {_fmt(o, 'x')} -> {_fmt(n, 'x')}; "
            f"resume.executed: {_fmt(oe)} -> {_fmt(ne)}"
        )
    elif name == "service":
        o = (old or {}).get("thrash", {}).get("speedup")
        nt = new.get("thrash", {})
        ob = (old or {}).get("batched", {}).get("zipf_qps")
        nb = new.get("batched", {}).get("zipf_qps")
        lines.append(
            f"  service thrash speedup: {_fmt(o, 'x')} -> {_fmt(nt.get('speedup'), 'x')}; "
            f"zipf qps: {_fmt(ob)} -> {_fmt(nb)}"
        )
    elif name == "scale":
        old_points = (old or {}).get("points", {})
        for point, rec in sorted(new.get("points", {}).items()):
            op = old_points.get(point, {})
            oe = op.get("build", {}).get("edges_per_s")
            ne = rec.get("build", {}).get("edges_per_s")
            if "memory" in rec:  # pool protocol: worker-memory headline
                o = op.get("memory", {}).get("overhead_ratio")
                n = rec.get("memory", {}).get("overhead_ratio")
                ol = op.get("memory", {}).get("legacy_overhead_ratio")
                nl = rec.get("memory", {}).get("legacy_overhead_ratio")
                lines.append(
                    f"  scale {point} worker-overhead: {_fmt(o, 'x')} -> {_fmt(n, 'x')} "
                    f"(legacy: {_fmt(ol, 'x')} -> {_fmt(nl, 'x')}); "
                    f"build: {_fmt(oe)} -> {_fmt(ne)} edges/s"
                )
            else:  # budget protocol: peak-vs-budget headline
                ob = op.get("build", {}).get("peak_rss_bytes")
                nb = rec.get("build", {}).get("peak_rss_bytes")
                budget = rec.get("build", {}).get("budget_bytes")
                lines.append(
                    f"  scale {point} build: {_fmt(oe)} -> {_fmt(ne)} edges/s; "
                    f"peak RSS: {_fmt(ob)} -> {_fmt(nb)} "
                    f"(budget {_fmt(budget)} bytes)"
                )
    elif name == "server":
        od = (old or {}).get("duel", {})
        nd = new.get("duel", {})
        o_top = max(
            (p.get("achieved_qps") for p in (old or {}).get("sweep", [])),
            default=None,
        )
        n_top = max(
            (p.get("achieved_qps") for p in new.get("sweep", [])), default=None
        )
        lines.append(
            f"  server duel speedup: {_fmt(od.get('speedup'), 'x')} -> "
            f"{_fmt(nd.get('speedup'), 'x')}; top achieved qps: "
            f"{_fmt(o_top)} -> {_fmt(n_top)}"
        )
    elif name == "provider":
        old_wl = (old or {}).get("workloads", {})
        for wl, rec in sorted(new.get("workloads", {}).items()):
            o_auto = old_wl.get(wl, {}).get("auto", {})
            n_auto = rec.get("auto", {})
            lines.append(
                f"  provider {wl} auto: {_fmt(o_auto.get('qps'))} -> "
                f"{_fmt(n_auto.get('qps'))} q/s; max stretch: "
                f"{_fmt(o_auto.get('stretch', {}).get('max'), 'x')} -> "
                f"{_fmt(n_auto.get('stretch', {}).get('max'), 'x')}"
            )
    elif name == "suite":
        old_algos = (old or {}).get("algorithms", {})
        for algo, rec in sorted(new.get("algorithms", {}).items()):
            o = old_algos.get(algo, {}).get("wall_s")
            n = rec.get("wall_s")
            ratio = "" if not o else f" ({n / o:.2f}x)"
            lines.append(f"  suite {algo}: {_fmt(o, 's')} -> {_fmt(n, 's')}{ratio}")
        old_hot = (old or {}).get("hot_loops", {})
        for key, rec in sorted(new.get("hot_loops", {}).items()):
            o = old_hot.get(key, {}).get("speedup")
            lines.append(
                f"  suite hot-loop {key}: {_fmt(o, 'x')} -> {_fmt(rec.get('speedup'), 'x')}"
            )
    return lines


def _lint_gate() -> int:
    """Refuse to snapshot from a tree that fails ``repro lint``.

    A committed BENCH_*.json is a perf claim about the tree it was built
    from; building one on top of an invariant violation (e.g. a memmap
    materialization that changes the memory numbers) would bake the bug
    into the baseline future PRs defend.
    """
    from repro.analysis import lint_paths

    findings = lint_paths([os.path.join(REPO_ROOT, "src")])
    for finding in findings:
        print(finding.format(), file=sys.stderr)
    if findings:
        print(
            f"bench_snapshot: refusing to snapshot — {len(findings)} lint "
            "finding(s); fix them (or rerun with --skip-lint to diagnose)",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny-n smoke run")
    ap.add_argument(
        "--skip-lint",
        action="store_true",
        help="skip the repro-lint precondition (diagnosis only; committed "
        "snapshots must come from a lint-clean tree)",
    )
    ap.add_argument(
        "--suite",
        choices=[*SUITES, "all", "full"],
        default="distance",
        help="which benchmark suite to run; 'full' (or 'all') regenerates "
        "every BENCH file and prints a trajectory diff (default: distance)",
    )
    ap.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_<suite>.json at repo root; "
        "only valid with a single suite)",
    )
    args = ap.parse_args()

    names = list(SUITES) if args.suite in ("all", "full") else [args.suite]
    if args.out and len(names) > 1:
        ap.error("--out requires a single --suite")
    if not args.skip_lint and _lint_gate():
        return 1
    rc = 0
    diffs: list[str] = []
    for name in names:
        out_path = args.out or os.path.join(REPO_ROOT, OUT_PATHS[name])
        old = _load_existing(out_path)
        suite_rc, record = SUITES[name](args, out_path)
        rc |= suite_rc
        diffs += _trajectory_diff(name, old, record)
    if len(names) > 1:
        print("trajectory diff (committed -> this run):")
        for line in diffs:
            print(line)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
